"""Right-hand-side assembly for the five-equation system (paper eq. (1)).

Per direction ``d`` the dimension-split pipeline is exactly MFC's:

1. pad primitives with ghost cells along ``d`` and fill them
   (physical BCs here; halo exchange in distributed runs),
2. WENO-reconstruct left/right face states,
3. solve the face Riemann problems (HLLC by default),
4. accumulate the conservative flux divergence and the face-velocity
   divergence for the nonconservative
   :math:`\\alpha \\nabla\\!\\cdot u` term.

The optional :class:`~repro.common.timing.Stopwatch` records wall time
per stage under the kernel names the paper's breakdown figures use
("weno", "riemann", "packing", "other"), so the host-side benches can
report the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend import array_namespace, resolve_backend
from repro.bc.boundary import BoundarySet, fill_axis_ghosts, pad_axis
from repro.common import DTYPE, ConfigurationError, Stopwatch
from repro.eos.mixture import Mixture
from repro.fields.transpose import sweep_perm, untranspose_loop
from repro.grid.cartesian import StructuredGrid
from repro.hardware.devices import DeviceSpec, get_device
from repro.riemann import SOLVERS, resolve_riemann_flux, validate_riemann_variant
from repro.solver.sweep import (
    plan_transposed_axes,
    validate_fusion,
    validate_sweep_layout,
)
from repro.solver.geometry import (
    GEOMETRIES,
    apply_axisymmetric_terms,
    validate_geometry,
)
from repro.solver.positivity import limit_face_states
from repro.solver.viscous import Viscosity, viscous_rhs
from repro.solver.workspace import SolverWorkspace
from repro.state.conversions import cons_to_prim
from repro.state.layout import StateLayout
from repro.weno import halo_width, reconstruct_faces, reconstruct_faces_span
from repro.weno.stacked import (
    narrow_scratch_rows,
    validate_weno_variant,
    weno_passes_per_side,
)

#: Field-sized rows of the direction pipeline live per tile row: padded
#: primitives + prim + dqdt + both face states + flux + divergence
#: scratch + 8 WENO + 7 Riemann scratch rows (the L2 tile heuristic's
#: working-set estimate).
PIPELINE_ROWS_PER_SLICE = 22


def _fused_tile_occupancy(device) -> float:
    """Cache-budget fraction for one *fused* tile's scratch arena.

    The gang heuristic budgets a tile against the whole device LLC
    (every unfused stage streams field-sized buffers all workers
    share).  A fused tile is different: its entire pipeline lives in a
    private :class:`~repro.solver.workspace.FusionScratch` arena touched
    by exactly one worker, so the budget that matters is one core's
    *share* of the last-level cache — on a 64-core catalog CPU, 1/64th
    of it.  Without this, big-LLC catalog entries make the heuristic
    pick one whole-field tile and fusion degenerates to the unfused
    memory behaviour (no locality win at all).
    """
    return 1.0 / max(1, getattr(device, "cores", None) or 1)


@dataclass(frozen=True)
class RHSConfig:
    """Numerical options of the RHS.

    ``geometry="axisymmetric"`` interprets a 2D grid as ``(x, r)`` and
    adds the cylindrical geometric source terms (paper §III-A).
    """

    weno_order: int = 5
    riemann_solver: str = "hllc"
    geometry: str = "cartesian"
    #: Per-component dynamic viscosities; None runs inviscid (Euler).
    viscosity: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.riemann_solver not in SOLVERS:
            raise ConfigurationError(
                f"unknown Riemann solver {self.riemann_solver!r}; "
                f"choose from {sorted(SOLVERS)}")
        halo_width(self.weno_order)  # validates the order
        if self.geometry not in GEOMETRIES:
            raise ConfigurationError(
                f"geometry must be one of {GEOMETRIES}, got {self.geometry!r}")
        if self.viscosity is not None:
            Viscosity(tuple(self.viscosity))  # validates


@dataclass
class RHS:
    """Callable computing :math:`dq/dt` for a conservative field ``q``.

    With ``use_workspace`` (the default) all padded-primitive, face,
    flux, and accumulator buffers are preallocated once in a
    :class:`~repro.solver.workspace.SolverWorkspace` and reused by every
    call, so steady-state evaluations perform no new large-array
    allocations; results are bitwise identical to the allocating
    reference path (``use_workspace=False``).

    With ``threads > 1`` the hot path (ghost pack → WENO → Riemann →
    flux divergence) executes tiled across a
    :class:`~repro.acc.gang.GangExecutor` thread pool: the gang axis of
    the pipeline's ``parallel loop gang vector collapse(ndim)`` spec
    becomes a contiguous-slab decomposition of the slowest spatial axis
    (halo-overlapped reads, disjoint writes into the workspace
    buffers), while the vector axis stays NumPy SIMD inside each tile.
    The threaded path is bitwise identical to the serial one — same
    inputs and same elementwise operation order per output cell.
    ``tile_device`` (a catalog key or :class:`DeviceSpec`) lets the
    L2-capacity tile heuristic size tiles for a specific host.

    ``sweep_layout`` selects the coalesced sweep engine (paper §III.D):
    ``"strided"`` runs every direction in the standard ``(v, x, y, z)``
    layout, ``"transposed"`` physically permutes the non-contiguous
    directions into an axis-last scratch layout before reconstructing
    (three bulk transposes replace the many strided passes inside
    WENO/Riemann), and ``"auto"`` chooses per direction from the
    bytes-moved vs. bytes-saved heuristic in
    :mod:`repro.solver.sweep`.  All three are bitwise identical; the
    transposed engine needs the workspace, so ``use_workspace=False``
    (and off-grid fallback calls) always sweep strided.
    """

    layout: StateLayout
    mixture: Mixture
    grid: StructuredGrid
    bcs: BoundarySet
    config: RHSConfig = field(default_factory=RHSConfig)
    stopwatch: Stopwatch | None = None
    use_workspace: bool = True
    threads: int = 1
    tile_device: DeviceSpec | str | None = None
    sweep_layout: str = "strided"
    #: Registered kernel implementations (all bitwise identical — the
    #: autotuner's choice axes): :data:`repro.weno.WENO_VARIANTS` and
    #: :data:`repro.riemann.RIEMANN_VARIANTS`.
    weno_variant: str = "chained"
    riemann_variant: str = "reference"
    #: Explicit per-launch tile count overriding the L2 heuristic
    #: (another tuner knob); None keeps the heuristic.
    tiles: int | None = None
    #: Kernel-fusion knob (:data:`repro.solver.sweep.FUSION_MODES`):
    #: ``"off"`` runs the stage-at-a-time pipeline, ``"on"`` compiles
    #: each direction sweep into one fused per-tile kernel via
    #: :mod:`repro.acc.fusion` (workspace required), ``"auto"`` fuses
    #: whenever the workspace path is active.  All modes are bitwise
    #: identical — fusion is a tuner axis like the sweep layout.
    fusion: str = "off"
    #: Execution backend (name, :class:`repro.backend.Backend`, or
    #: None for NumPy): owns the array namespace the kernels resolve
    #: and the workspace allocator.  Capability fallbacks are applied
    #: here: backends without negative-stride ``as_strided`` run the
    #: chained WENO kernels, backends the fusion code generator cannot
    #: target never fuse, and thread tiling is disabled where the
    #: backend manages its own parallelism (see ``docs/backends.md``).
    backend: object = None
    #: Array dtype of the state/workspace (``precision`` seam);
    #: ``numpy.float64`` keeps the bitwise-identical default.
    dtype: object = DTYPE
    #: Ensemble batch width: ``batch=B`` evaluates B same-grid cases
    #: stacked as ``q[:, b, ...]`` in ONE call, amortizing every ufunc
    #: pass (and every fused-kernel launch) B-fold.  The batch axis is
    #: treated as a leading *virtual spatial axis* that is never swept:
    #: all sweeps, tile plans, and fused kernels see the virtual shape
    #: ``(B, *grid.shape)`` while physical quantities (momentum
    #: components, boundary sets, cell widths) keep their physical
    #: direction index.  Every case advances bitwise as it would alone.
    batch: int | None = None

    def __post_init__(self) -> None:
        self.backend = resolve_backend(self.backend)
        self.dtype = np.dtype(self.dtype)
        if not self.backend.supports_stacked_weno \
                and self.weno_variant == "stacked":
            # Documented capability fallback (docs/backends.md): the
            # stacked kernels need negative-stride as_strided views.
            self.weno_variant = "chained"
        if not self.backend.supports_threads and self.threads > 1:
            self.threads = 1
        if self.grid.ndim != self.layout.ndim:
            raise ConfigurationError(
                f"grid is {self.grid.ndim}D but layout expects {self.layout.ndim}D")
        if self.bcs.ndim() != self.layout.ndim:
            raise ConfigurationError("boundary set dimensionality mismatch")
        if self.batch is not None and (
                not isinstance(self.batch, int) or isinstance(self.batch, bool)
                or self.batch < 1):
            raise ConfigurationError(
                f"batch must be a positive integer or None, got {self.batch!r}")
        #: Number of leading virtual (non-swept) axes: 1 when batched.
        self._nb = 0 if self.batch is None else 1
        #: Virtual spatial shape the sweeps/tiles/kernels operate on.
        self._vspatial = (self.grid.shape if self.batch is None
                          else (self.batch, *self.grid.shape))
        if self.batch is not None:
            if self.config.geometry != "cartesian":
                raise ConfigurationError(
                    "batched (ensemble) RHS supports cartesian geometry only")
            if self.config.viscosity is not None:
                raise ConfigurationError(
                    "batched (ensemble) RHS does not support viscosity yet")
            if not self.use_workspace:
                raise ConfigurationError(
                    "batched (ensemble) RHS requires use_workspace=True")
        self._ng = halo_width(self.config.weno_order)
        validate_weno_variant(self.weno_variant)
        validate_riemann_variant(self.riemann_variant)
        self._riemann = resolve_riemann_flux(self.config.riemann_solver,
                                             self.riemann_variant)
        #: Face-block ufunc passes both reconstruction sides of one
        #: sweep cost (tallied into the sweep counters).
        self._weno_sweep_passes = 2 * weno_passes_per_side(
            self.weno_variant, self.config.weno_order)
        if self.tiles is not None and (
                not isinstance(self.tiles, int) or isinstance(self.tiles, bool)
                or self.tiles < 1):
            raise ConfigurationError(
                f"tiles must be a positive integer or None, got {self.tiles!r}")
        validate_geometry(self.config.geometry, self.layout, self.grid)
        if self.config.geometry == "axisymmetric":
            self._radius = self.backend.xp.asarray(
                self.grid.centers(1).reshape(1, -1), dtype=self.dtype)
        else:
            self._radius = None
        self._viscosity = (Viscosity(tuple(self.config.viscosity))
                           if self.config.viscosity is not None else None)
        if self._viscosity is not None and len(self._viscosity.mu) != self.layout.ncomp:
            raise ConfigurationError(
                f"{len(self._viscosity.mu)} viscosities for "
                f"{self.layout.ncomp} components")
        #: Cumulative count of face states replaced by the positivity
        #: fallback (0 in well-resolved single-phase runs).
        self.limited_faces = 0
        validate_sweep_layout(self.sweep_layout)
        validate_fusion(self.fusion)
        if self.fusion == "on" and not self.backend.supports_fusion:
            raise ConfigurationError(
                f"fusion='on' is not supported on the "
                f"{self.backend.name!r} backend (the fused code "
                f"generator targets NumPy); use fusion='auto' or 'off'")
        if self.fusion == "on" and not self.use_workspace:
            raise ConfigurationError(
                "fusion='on' requires the workspace (the fused kernels' "
                "tile scratch arenas live there); use fusion='auto' to "
                "fuse opportunistically")
        #: Whether the direction sweeps run as fused per-tile kernels.
        self._fused = (self.fusion == "on"
                       or (self.fusion == "auto" and self.use_workspace
                           and self.backend.supports_fusion))
        self._device = (get_device(self.tile_device)
                        if isinstance(self.tile_device, str)
                        else self.tile_device)
        #: Directions the sweep engine physically transposes; empty for
        #: the strided engine and whenever there is no workspace to own
        #: the transposed scratch.
        if self.use_workspace:
            # Planned on the *physical* spatial shape (the batch axis is
            # never a transpose candidate), then shifted into virtual
            # axis indices.
            self._transposed_axes = frozenset(
                d + self._nb for d in plan_transposed_axes(
                    self.sweep_layout, self.layout.nvars, self.grid.shape,
                    self.config.weno_order, device=self._device))
        else:
            self._transposed_axes = frozenset()
        #: Per-sweep data-movement tallies (strided vs. contiguous
        #: reconstruction, bytes permuted); surfaced by the CLI, the
        #: benches, and :meth:`Profile.report`.  (Deferred import:
        #: repro.profiling's drivers import repro.solver.simulation,
        #: which imports this module — a cycle at module-import time.)
        from repro.profiling.counters import SweepCounters

        self.sweep_counters = SweepCounters()
        #: Preallocated buffer arena; None runs the allocating
        #: reference path.
        self.workspace = (SolverWorkspace(self.layout, self.grid, self._ng,
                                          dtype=self.dtype,
                                          transposed_axes=self._transposed_axes,
                                          weno_variant=self.weno_variant,
                                          weno_order=self.config.weno_order,
                                          fusion=self._fused,
                                          batch=self.batch,
                                          backend=self.backend)
                          if self.use_workspace else None)
        if (not isinstance(self.threads, int) or isinstance(self.threads, bool)
                or self.threads < 1):
            raise ConfigurationError(
                f"threads must be a positive integer, got {self.threads!r}")
        #: Thread-tile backend; None takes the serial path with zero
        #: executor overhead.  (The acc import is deferred:
        #: repro.acc's runtime pulls in the profiling drivers, which
        #: import this module — a cycle at module-import time.)
        self.executor = None
        self._tiles: int | None = None
        #: Per-direction tile counts for the transposed engine, whose
        #: slab axis is the first *untransposed* spatial axis (array
        #: axis 1 of the transposed block), not spatial axis 0.
        self._tiles_t: dict[int, int] = {}
        if self.threads > 1:
            from repro.acc.gang import GangExecutor

            self.executor = GangExecutor(self.threads)
            spatial = self._vspatial
            if not self._fused:
                self._tiles = self._plan_tiles(spatial[0])
                for d in sorted(self._transposed_axes):
                    extent = spatial[1] if d == 0 else spatial[0]
                    self._tiles_t[d] = self._plan_tiles(extent)
        #: Fused-kernel state: per-direction (spec, kernel, region)
        #: triples, tile counts, and the shared runtime context.
        self._fused_kernels: dict = {}
        self._tiles_f: dict[int, int] = {}
        self.fusion_backend: str | None = None
        if self._fused:
            self._init_fusion()

    def _init_fusion(self) -> None:
        """Plan, generate, and compile one fused kernel per direction.

        For every sweep direction the directive-graph pass groups the
        pad→WENO→limit→Riemann→divergence chain into a fused region
        (proving it legal and picking the slab axis), the code generator
        renders it as one shape-generic kernel, and the process-wide
        cache compiles it at most once per spec — a second RHS with the
        same configuration reuses the compiled kernel.  (Deferred
        import: repro.acc's runtime pulls in the profiling drivers,
        which import this module.)
        """
        from repro.acc.fusion import (
            FusedKernelSpec,
            FusionContext,
            fused_kernel,
            plan_fusion,
            select_backend,
            sweep_stage_graph,
        )
        from repro.acc.gang import tile_spans
        from repro.hardware.devices import default_host_device
        from repro.hardware.tiling import suggest_tile_count

        self._tile_spans = tile_spans
        self.fusion_backend = select_backend(None)
        spatial = self._vspatial
        ndim = len(spatial)
        cells = 1
        for n in spatial:
            cells *= n
        self._fusion_ctx = FusionContext(self.layout, self.mixture,
                                         self._riemann)
        device = (self._device if self._device is not None
                  else default_host_device())
        for d in range(self._nb, ndim):
            kind = "transposed" if d in self._transposed_axes else "strided"
            stages = sweep_stage_graph(
                ndim=ndim, nvars=self.layout.nvars, spatial=spatial, d=d,
                order=self.config.weno_order, pack=True)
            region = plan_fusion(stages, d=d, ndim=ndim)
            spec = FusedKernelSpec(
                kind=kind, pack=True, ndim=ndim, d=d,
                order=self.config.weno_order,
                weno_variant=self.weno_variant,
                riemann_solver=self.config.riemann_solver,
                riemann_variant=self.riemann_variant,
                dtype=self.dtype.name, backend=self.fusion_backend,
                batch=self.batch is not None)
            self._fused_kernels[d] = (spec, fused_kernel(spec), region)
            if kind == "transposed":
                extent = spatial[1] if d == 0 else spatial[0]
            elif region.slab_axis is None:
                extent = 1
            else:
                extent = spatial[region.slab_axis]
            if self.executor is not None:
                self._tiles_f[d] = self._plan_tiles(extent)
            elif self.tiles is not None:
                self._tiles_f[d] = max(1, min(self.tiles, extent))
            else:
                bytes_per_slice = (PIPELINE_ROWS_PER_SLICE
                                   * self.layout.nvars
                                   * (cells // max(extent, 1))
                                   * self.dtype.itemsize)
                self._tiles_f[d] = suggest_tile_count(
                    extent, 1, bytes_per_slice=bytes_per_slice,
                    device=device,
                    occupancy=_fused_tile_occupancy(device))

    def _plan_tiles(self, extent: int) -> int:
        """Tile count along a slab axis, from the gang spec + L2 size.

        The pipeline's directive shape is the paper's Listing 1 —
        ``parallel loop gang vector collapse(ndim)`` over the spatial
        loops with the O(1) variable loop ``seq`` — resolved to gangs by
        the :mod:`repro.acc` launch model, capped by the worker count,
        then refined in worker multiples until one tile's working set
        fits the target device's last-level cache.  ``extent`` is the
        slab axis length: spatial axis 0 for the strided engine, the
        transposed block's axis-1 extent for the transposed engine.
        An explicit ``tiles`` override (the tuner knob) bypasses the
        heuristic, clamped to the extent.  Only the fused engine plans
        through here, so the cache budget is the per-core LLC share of
        :func:`_fused_tile_occupancy`, not the whole-device gang budget.
        """
        if self.tiles is not None:
            return max(1, min(self.tiles, extent))

        from repro.acc.directives import Clause, LoopDirective, ParallelLoopNest
        from repro.hardware.devices import default_host_device

        spatial = self._vspatial
        # Virtual 4D nests (batched 3D sweeps) get a leading batch loop.
        names = (("b", "x", "y", "z") if self._nb else ("x", "y", "z"))
        loops = [LoopDirective(names[0], spatial[0],
                               frozenset({Clause.GANG, Clause.VECTOR}),
                               collapse=len(spatial))]
        loops += [LoopDirective(names[k], spatial[k])
                  for k in range(1, len(spatial))]
        loops.append(LoopDirective("v", self.layout.nvars,
                                   frozenset({Clause.SEQ})))
        nest = ParallelLoopNest(tuple(loops))
        cells = 1
        for n in spatial:
            cells *= n
        bytes_per_slice = (PIPELINE_ROWS_PER_SLICE * self.layout.nvars
                           * (cells // max(extent, 1))
                           * self.dtype.itemsize)
        device = (self._device if self._device is not None
                  else default_host_device())
        return self.executor.plan_tiles(
            nest, extent, bytes_per_slice=bytes_per_slice, device=device,
            occupancy=_fused_tile_occupancy(device))

    def tile_plan(self) -> dict:
        """The chosen tiling, for profiler reports and bench records.

        ``source`` says whether the counts came from the explicit
        ``tiles`` override (a tuning plan) or the L2 heuristic;
        ``plans`` carries the executor's per-extent planning decisions
        (empty for overridden or serial runs).
        """
        return {
            "tiles": self._tiles,
            "tiles_transposed": dict(self._tiles_t),
            "tiles_fused": dict(self._tiles_f),
            "fusion": self.fusion,
            "fusion_backend": self.fusion_backend,
            "source": ("override" if self.tiles is not None else "heuristic"),
            "plans": (list(self.executor.tile_plans)
                      if self.executor is not None else []),
        }

    @property
    def ghost_width(self) -> int:
        return self._ng

    def __call__(self, q: np.ndarray, *, out: np.ndarray | None = None,
                 prim: np.ndarray | None = None) -> np.ndarray:
        """Compute ``dq/dt``.

        Parameters
        ----------
        out:
            Optional destination for the tendency (e.g. the workspace's
            ``dqdt``); a fresh array is allocated when omitted, so plain
            ``rhs(q)`` calls never hand out an aliased buffer.
        prim:
            Optional precomputed primitive field of ``q`` (the driver's
            dt computation shares its ``cons_to_prim`` with RK stage
            one through this).
        """
        layout = self.layout
        sw = self.stopwatch
        ws = self.workspace
        if ws is not None and not ws.compatible(q):
            ws = None  # off-grid shapes fall back to the allocating path
        xp = ws.xp if ws is not None else array_namespace(q)
        # Cell widths live on the host; asarray is the sanctioned H2D
        # entry (identity for the NumPy backend, so bitwise neutral).
        widths = tuple(xp.asarray(w, dtype=q.dtype)
                       for w in self.grid.width_fields())

        if prim is None:
            prim_out = ws.prim if ws is not None else None
            if sw is not None:
                with sw.time("other"):
                    prim = cons_to_prim(layout, self.mixture, q, out=prim_out)
            else:
                prim = cons_to_prim(layout, self.mixture, q, out=prim_out)

        if out is None:
            dqdt = xp.zeros_like(q)
        else:
            dqdt = out
            dqdt[...] = 0.0
        if ws is not None:
            divu = ws.divu
            divu[...] = 0.0
        else:
            divu = xp.zeros(tuple(q.shape[1:]), dtype=q.dtype)

        # The tiled backend and the transposed engine both need the
        # workspace buffers (per-thread scratch, disjoint-write arenas,
        # transposed scratch); off-grid fallbacks run serial strided.
        # Virtual direction d sweeps array axis d+1; the physical
        # direction (momentum component, BC axis, width field) is
        # d - nb, where nb is the leading batch-axis count.
        tiled = ws is not None and self.executor is not None
        # A batched RHS may still be handed a single-case field (e.g. a
        # validation probe); the array rank says which shape arrived.
        nb = 1 if (self._nb and prim.ndim == layout.ndim + 2) else 0
        for d in range(nb, nb + layout.ndim):
            w = widths[d - nb]
            if ws is not None and self._fused:
                self._accumulate_direction_fused(prim, d, w, dqdt, divu, ws)
            elif ws is not None and d in self._transposed_axes:
                if tiled:
                    self._accumulate_direction_transposed_tiled(
                        prim, d, w, dqdt, divu, ws)
                else:
                    self._accumulate_direction_transposed(
                        prim, d, w, dqdt, divu, ws)
            elif tiled:
                self._accumulate_direction_tiled(prim, d, w, dqdt, divu, ws)
            else:
                self._accumulate_direction(prim, d, w, dqdt, divu, ws)

        if self._radius is not None:
            apply_axisymmetric_terms(layout, prim, q, self._radius, dqdt, divu)

        if self._viscosity is not None:
            if sw is not None:
                with sw.time("other"):
                    dqdt += viscous_rhs(layout, self.grid, prim, self._viscosity)
            else:
                dqdt += viscous_rhs(layout, self.grid, prim, self._viscosity)

        # Nonconservative term: dalpha/dt += alpha * div(u).
        dqdt[layout.advected] += prim[layout.advected] * divu
        return dqdt

    # ------------------------------------------------------------------
    def _accumulate_direction_fused(self, prim: np.ndarray, d: int,
                                    width: np.ndarray, dqdt: np.ndarray,
                                    divu: np.ndarray,
                                    ws: SolverWorkspace) -> None:
        """One direction as a single fused per-tile kernel launch.

        The compiled kernel (see :mod:`repro.acc.fusion`) runs the whole
        pad→WENO→limit→Riemann→divergence chain on one slab tile against
        a tile-sized :class:`~repro.solver.workspace.FusionScratch`
        arena, so no stage spills a field-sized intermediate.  Bitwise
        identical to the unfused paths: the generated body performs the
        same elementwise operations in the same order, and the slab axis
        is stencil-free in every stage (the graph legality rule), so
        tiles compose exactly.
        """
        layout, sw = self.layout, self.stopwatch
        pd = d - (prim.ndim - layout.ndim - 1)  # physical direction
        lo_bc, hi_bc = self.bcs.per_axis[pd]
        spec, kern, region = self._fused_kernels[d]
        ctx = self._fusion_ctx
        tiles = self._tiles_f[d]
        spatial = prim.shape[1:]
        itemsize = prim.dtype.itemsize

        def timed(name):
            return sw.time(name) if sw is not None else _NullCtx()

        if spec.kind == "strided":
            sa = region.slab_axis
            extent = 1 if sa is None else prim.shape[sa + 1]
            w_max = -(-extent // min(tiles, extent))

            def slab(lo, hi):
                scr = ws.fusion_scratch(d, w_max).narrow(hi - lo)
                if sa is None:
                    pv, dq, dv = prim, dqdt, divu
                else:
                    ci = (slice(None),) * (sa + 1) + (slice(lo, hi),)
                    pv, dq, dv = prim[ci], dqdt[ci], divu[ci[1:]]
                with timed("fused"):
                    return kern(ctx, pv, scr.pad, scr.vl, scr.vr, scr.flux,
                                scr.uface, scr.wscr, scr.rscr, scr.dscr,
                                scr.dvscr, dq, dv, width, lo_bc, hi_bc)
        else:
            arr = prim.ndim
            perm = sweep_perm(arr, d + 1)
            tview = array_namespace(prim).transpose(prim, perm)
            extent = tview.shape[1]
            tiled_axis = perm[1]
            w_max = -(-extent // min(tiles, extent))

            def slab(lo, hi):
                scr = ws.fusion_scratch(d, w_max,
                                        transposed=True).narrow(hi - lo)
                s = (slice(None), slice(lo, hi))
                std = [slice(None)] * arr
                std[tiled_axis] = slice(lo, hi)
                std = tuple(std)
                with timed("fused"):
                    return kern(ctx, tview[s], scr.tpad, scr.tvl, scr.tvr,
                                scr.tflux, scr.tuface, scr.flux, scr.uface,
                                scr.flux_t, scr.uface_t, scr.wscr, scr.rscr,
                                scr.dscr, scr.dvscr, dqdt[std],
                                divu[std[1:]], width, lo_bc, hi_bc)

        if self.executor is not None:
            self.limited_faces += sum(
                self.executor.launch(slab, extent, tiles=tiles))
        else:
            for lo, hi in self._tile_spans(extent, tiles):
                self.limited_faces += slab(lo, hi)

        # Nominal (field-sized) tallies keep the sweep counters
        # comparable with the unfused engine, whose byte figures come
        # from the workspace face buffers that do not exist here.
        face_cells = 1
        for k, n in enumerate(spatial):
            face_cells *= (n + 1) if k == d else n
        face_bytes = layout.nvars * face_cells * itemsize
        if spec.kind == "strided":
            self.sweep_counters.record_strided(
                2 * face_bytes, contiguous=(pd == layout.ndim - 1),
                weno_passes=self._weno_sweep_passes)
        else:
            self.sweep_counters.record_transposed(
                2 * face_bytes,
                prim.nbytes + face_bytes + face_cells * itemsize,
                weno_passes=self._weno_sweep_passes)
        n_tiles = min(tiles, extent)
        self.sweep_counters.record_fused(
            n_tiles, n_tiles * region.passes_saved_per_tile(
                self.weno_variant, self.config.weno_order))

    # ------------------------------------------------------------------
    def _accumulate_direction(self, prim: np.ndarray, d: int, width: np.ndarray,
                              dqdt: np.ndarray, divu: np.ndarray,
                              ws: SolverWorkspace | None = None) -> None:
        layout, ng, sw = self.layout, self._ng, self.stopwatch
        pd = d - (prim.ndim - layout.ndim - 1)  # physical direction
        lo, hi = self.bcs.per_axis[pd]

        def timed(name):
            return sw.time(name) if sw is not None else _NullCtx()

        with timed("packing"):
            padded = pad_axis(prim, d, ng,
                              out=ws.padded[d] if ws is not None else None)
            fill_axis_ghosts(padded, layout, d, ng, lo, hi,
                             normal_direction=pd)

        with timed("weno"):
            if ws is not None:
                v_l, v_r = reconstruct_faces(
                    padded, d + 1, self.config.weno_order,
                    out=(ws.face_l[d], ws.face_r[d]),
                    scratch=ws.weno_scratch[d], variant=self.weno_variant)
            else:
                v_l, v_r = reconstruct_faces(padded, d + 1,
                                             self.config.weno_order,
                                             variant=self.weno_variant)
            self.limited_faces += limit_face_states(
                layout, self.mixture, padded, v_l, v_r, d, ng)

        with timed("riemann"):
            if ws is not None:
                flux, u_face = self._riemann(layout, self.mixture, v_l, v_r, pd,
                                             out=ws.flux[d], out_u=ws.u_face[d],
                                             scratch=ws.riemann_scratch[d])
            else:
                flux, u_face = self._riemann(layout, self.mixture, v_l, v_r, pd)

        with timed("other"):
            # dq/dt += (F_{i-1/2} - F_{i+1/2}) / dx = -diff(F)/dx.
            if ws is not None:
                _accumulate_divergence(flux, d + 1, width, ws.div_scratch, dqdt,
                                       "subtract")
                _accumulate_divergence(u_face, d, width, ws.divu_scratch, divu,
                                       "add")
            else:
                xp = array_namespace(prim)
                dqdt -= xp.diff(flux, axis=d + 1) / width
                divu += xp.diff(u_face, axis=d) / width

        self.sweep_counters.record_strided(
            v_l.nbytes + v_r.nbytes, contiguous=(pd == layout.ndim - 1),
            weno_passes=self._weno_sweep_passes)

    # ------------------------------------------------------------------
    def _accumulate_direction_tiled(self, prim: np.ndarray, d: int,
                                    width: np.ndarray, dqdt: np.ndarray,
                                    divu: np.ndarray,
                                    ws: SolverWorkspace) -> None:
        """One direction of the RHS, tiled along spatial axis 0.

        Bitwise identical to :meth:`_accumulate_direction`: every tile
        runs the same elementwise kernel sequence on slab views of the
        same workspace buffers, reading halos freely but writing only
        its own span.  Per-kernel wall time is recorded by each worker
        into the shared (thread-safe) stopwatch, so the breakdown keys
        match the serial path's.

        For ``d == 0`` the tiled axis is the reconstruction axis itself:
        the ghost pack, the face reconstruction/solve, and the
        divergence accumulate each need a barrier between them because
        tiles read one another's freshly written halo rows.  For
        ``d > 0`` every slab is self-contained and the whole pipeline
        runs fused in a single launch.
        """
        layout, ng, sw, ex = self.layout, self._ng, self.stopwatch, self.executor
        pd = d - (prim.ndim - layout.ndim - 1)  # physical direction
        lo_bc, hi_bc = self.bcs.per_axis[pd]
        order = self.config.weno_order
        padded, v_l, v_r = ws.padded[d], ws.face_l[d], ws.face_r[d]
        flux, u_face = ws.flux[d], ws.u_face[d]
        rows = prim.shape[1]
        tiles = self._tiles

        def timed(name):
            return sw.time(name) if sw is not None else _NullCtx()

        if d == 0:
            def pack(lo, hi):
                with timed("packing"):
                    padded[:, ng + lo:ng + hi] = prim[:, lo:hi]

            ex.launch(pack, rows, tiles=tiles)
            with timed("packing"):
                fill_axis_ghosts(padded, layout, d, ng, lo_bc, hi_bc)

            n_faces = rows + 1
            w_max = -(-n_faces // min(tiles, n_faces))

            def faces(lo, hi):
                wscr, rscr = ws.thread_scratch(d, w_max)
                fi = (slice(None), slice(lo, hi))
                with timed("weno"):
                    reconstruct_faces_span(padded, 1, order, lo, hi,
                                           out=(v_l, v_r), scratch=wscr,
                                           variant=self.weno_variant)
                    limited = limit_face_states(
                        layout, self.mixture, padded[:, lo:],
                        v_l[fi], v_r[fi], d, ng)
                with timed("riemann"):
                    self._riemann(
                        layout, self.mixture, v_l[fi], v_r[fi], d,
                        out=flux[fi], out_u=u_face[lo:hi],
                        scratch=rscr.view((slice(None), slice(0, hi - lo))))
                return limited

            self.limited_faces += sum(ex.launch(faces, n_faces, tiles=tiles))

            def accum(lo, hi):
                with timed("other"):
                    ci = (slice(None), slice(lo, hi))
                    fi = (slice(None), slice(lo, hi + 1))
                    _accumulate_divergence(flux[fi], 1, width[lo:hi],
                                           ws.div_scratch[ci], dqdt[ci],
                                           "subtract")
                    _accumulate_divergence(u_face[lo:hi + 1], 0, width[lo:hi],
                                           ws.divu_scratch[lo:hi], divu[lo:hi],
                                           "add")

            ex.launch(accum, rows, tiles=tiles)
            self.sweep_counters.record_strided(
                v_l.nbytes + v_r.nbytes, contiguous=(d == layout.ndim - 1),
                weno_passes=self._weno_sweep_passes)
            return

        w_max = -(-rows // min(tiles, rows))

        def slab(lo, hi):
            wscr, rscr = ws.thread_scratch(d, w_max)
            count = hi - lo
            s = (slice(None), slice(lo, hi))
            with timed("packing"):
                pad_axis(prim[s], d, ng, out=padded[s])
                fill_axis_ghosts(padded[s], layout, d, ng, lo_bc, hi_bc,
                                 normal_direction=pd)
            with timed("weno"):
                tl, tr = reconstruct_faces(
                    padded[s], d + 1, order, out=(v_l[s], v_r[s]),
                    scratch=narrow_scratch_rows(wscr, self.weno_variant,
                                                order, count),
                    variant=self.weno_variant)
                limited = limit_face_states(layout, self.mixture, padded[s],
                                            tl, tr, d, ng)
            with timed("riemann"):
                tf, tu = self._riemann(
                    layout, self.mixture, tl, tr, pd,
                    out=flux[s], out_u=u_face[lo:hi],
                    scratch=rscr.view((slice(None), slice(0, count))))
            with timed("other"):
                _accumulate_divergence(tf, d + 1, width, ws.div_scratch[s],
                                       dqdt[s], "subtract")
                _accumulate_divergence(tu, d, width, ws.divu_scratch[lo:hi],
                                       divu[lo:hi], "add")
            return limited

        self.limited_faces += sum(ex.launch(slab, rows, tiles=tiles))
        self.sweep_counters.record_strided(
            v_l.nbytes + v_r.nbytes, contiguous=(pd == layout.ndim - 1),
            weno_passes=self._weno_sweep_passes)

    # ------------------------------------------------------------------
    def _accumulate_direction_transposed(self, prim: np.ndarray, d: int,
                                         width: np.ndarray, dqdt: np.ndarray,
                                         divu: np.ndarray,
                                         ws: SolverWorkspace) -> None:
        """One direction swept in the axis-contiguous transposed layout.

        The paper's §III.D coalescing transform, host-side: instead of
        running WENO/Riemann with a strided inner loop (dozens of
        strided passes over the face block for order 5), the padded
        primitives are gathered once into a workspace-owned scratch
        block whose reconstruction axis is last, the whole
        pad→WENO→Riemann pipeline runs contiguously there, and only the
        face fluxes are scattered back for the divergence accumulate —
        three bulk permutations in total, all timed as "packing".

        Bitwise identical to :meth:`_accumulate_direction`: every
        kernel is elementwise over faces with the same per-face
        operation order, so physical layout cannot change any result
        bit; the transposes themselves are pure data movement.
        """
        layout, ng, sw = self.layout, self._ng, self.stopwatch
        pd = d - (prim.ndim - layout.ndim - 1)  # physical direction
        lo_bc, hi_bc = self.bcs.per_axis[pd]
        arr = prim.ndim
        perm = sweep_perm(arr, d + 1)
        tpad = ws.t_padded[d]
        tvl, tvr = ws.t_face_l[d], ws.t_face_r[d]
        tflux, tuface = ws.t_flux[d], ws.t_u_face[d]
        flux, u_face = ws.flux[d], ws.u_face[d]
        n = prim.shape[d + 1]

        def timed(name):
            return sw.time(name) if sw is not None else _NullCtx()

        with timed("packing"):
            # Gather the primitives into the axis-last padded block (the
            # engine's one strided read), then fill ghosts contiguously.
            tpad[..., ng:ng + n] = array_namespace(prim).transpose(prim,
                                                                    perm)
            fill_axis_ghosts(tpad, layout, arr - 2, ng, lo_bc, hi_bc,
                             normal_direction=pd)

        with timed("weno"):
            reconstruct_faces(tpad, arr - 1, self.config.weno_order,
                              out=(tvl, tvr), scratch=ws.weno_scratch[d],
                              variant=self.weno_variant)
            self.limited_faces += limit_face_states(
                layout, self.mixture, tpad, tvl, tvr, arr - 2, ng)

        with timed("riemann"):
            self._riemann(layout, self.mixture, tvl, tvr, pd,
                          out=tflux, out_u=tuface,
                          scratch=ws.t_riemann_scratch[d])

        with timed("packing"):
            # Scatter only the face fluxes back to the standard layout.
            untranspose_loop(tflux, perm, out=flux)
            untranspose_loop(tuface, tuple(p - 1 for p in perm[1:]),
                             out=u_face)

        with timed("other"):
            _accumulate_divergence(flux, d + 1, width, ws.div_scratch, dqdt,
                                   "subtract")
            _accumulate_divergence(u_face, d, width, ws.divu_scratch, divu,
                                   "add")

        self.sweep_counters.record_transposed(
            tvl.nbytes + tvr.nbytes,
            prim.nbytes + flux.nbytes + u_face.nbytes,
            weno_passes=self._weno_sweep_passes)

    # ------------------------------------------------------------------
    def _accumulate_direction_transposed_tiled(self, prim: np.ndarray, d: int,
                                               width: np.ndarray,
                                               dqdt: np.ndarray,
                                               divu: np.ndarray,
                                               ws: SolverWorkspace) -> None:
        """Transposed sweep tiled along the transposed block's axis 1.

        Unlike the strided ``d == 0`` path (three barrier-separated
        launches because tiles cut the reconstruction axis itself), the
        transposed engine's slab axis is always perpendicular to the
        reconstruction axis, so every slab owns its full reconstruction
        extent and the whole gather→pad→WENO→Riemann→scatter→accumulate
        pipeline runs fused in a single launch for every direction —
        including ``d == 0``.
        """
        layout, ng, sw, ex = self.layout, self._ng, self.stopwatch, self.executor
        pd = d - (prim.ndim - layout.ndim - 1)  # physical direction
        lo_bc, hi_bc = self.bcs.per_axis[pd]
        order = self.config.weno_order
        arr = prim.ndim
        perm = sweep_perm(arr, d + 1)
        tpad = ws.t_padded[d]
        tvl, tvr = ws.t_face_l[d], ws.t_face_r[d]
        tflux, tuface = ws.t_flux[d], ws.t_u_face[d]
        flux, u_face = ws.flux[d], ws.u_face[d]
        n = prim.shape[d + 1]
        # Standard-layout views pre-permuted so each slab's gather and
        # scatter are plain slice assignments (disjoint writes: the
        # slab axis is axis 1 of every transposed buffer).
        xp = array_namespace(prim)
        tview = xp.transpose(prim, perm)
        flux_t = xp.transpose(flux, perm)
        uface_t = xp.transpose(u_face, tuple(p - 1 for p in perm[1:]))
        tiled_axis = perm[1]  # standard-layout array axis the slabs cut
        extent = tpad.shape[1]
        tiles = self._tiles_t[d]
        w_max = -(-extent // min(tiles, extent))

        def timed(name):
            return sw.time(name) if sw is not None else _NullCtx()

        def slab(lo, hi):
            wscr, rscr = ws.thread_scratch(d, w_max, transposed=True)
            count = hi - lo
            s = (slice(None), slice(lo, hi))
            with timed("packing"):
                tpad[s][..., ng:ng + n] = tview[s]
                fill_axis_ghosts(tpad[s], layout, arr - 2, ng, lo_bc, hi_bc,
                                 normal_direction=pd)
            with timed("weno"):
                tl, tr = reconstruct_faces(
                    tpad[s], arr - 1, order, out=(tvl[s], tvr[s]),
                    scratch=narrow_scratch_rows(wscr, self.weno_variant,
                                                order, count),
                    variant=self.weno_variant)
                limited = limit_face_states(layout, self.mixture, tpad[s],
                                            tl, tr, arr - 2, ng)
            with timed("riemann"):
                tf, tu = self._riemann(
                    layout, self.mixture, tl, tr, pd,
                    out=tflux[s], out_u=tuface[lo:hi],
                    scratch=rscr.view((slice(None), slice(0, count))))
            with timed("packing"):
                xp.copyto(flux_t[s], tf)
                xp.copyto(uface_t[lo:hi], tu)
            with timed("other"):
                std = [slice(None)] * arr
                std[tiled_axis] = slice(lo, hi)
                std = tuple(std)
                _accumulate_divergence(flux[std], d + 1, width,
                                       ws.div_scratch[std], dqdt[std],
                                       "subtract")
                _accumulate_divergence(u_face[std[1:]], d, width,
                                       ws.divu_scratch[std[1:]], divu[std[1:]],
                                       "add")
            return limited

        self.limited_faces += sum(ex.launch(slab, extent, tiles=tiles))
        self.sweep_counters.record_transposed(
            tvl.nbytes + tvr.nbytes,
            prim.nbytes + flux.nbytes + u_face.nbytes,
            weno_passes=self._weno_sweep_passes)


def _accumulate_divergence(faces, axis: int, width,
                           scratch, acc, op: str) -> None:
    """``acc op= diff(faces, axis)/width`` without temporaries.

    ``op`` names the accumulating ufunc ("subtract"/"add") so it can be
    resolved against the arrays' own namespace.  Bitwise identical to
    ``np.diff``-based accumulation: the forward difference, the width
    division, and the in-place accumulate are the same three ufunc
    evaluations in the same order.
    """
    xp = array_namespace(faces, acc)
    lo = [slice(None)] * faces.ndim
    hi = [slice(None)] * faces.ndim
    lo[axis] = slice(0, -1)
    hi[axis] = slice(1, None)
    xp.subtract(faces[tuple(hi)], faces[tuple(lo)], out=scratch)
    xp.true_divide(scratch, width, out=scratch)
    getattr(xp, op)(acc, scratch, out=acc)


class _NullCtx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None
