"""Patch-based case setup, mirroring MFC's input-file "patches".

A :class:`Case` owns the grid, the fluid mixture, and an ordered list of
:class:`Patch` objects.  Each patch covers a geometric region (box,
sphere/circle, half-space) with uniform primitive values; later patches
overwrite earlier ones, exactly as MFC layers its patches.  The shocked
state of a shock-bubble problem, for instance, is a half-space patch on
top of an ambient background patch, plus a sphere patch for the bubble.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.common import ConfigurationError, DTYPE
from repro.eos.mixture import Mixture
from repro.grid.cartesian import StructuredGrid
from repro.state.conversions import prim_to_cons
from repro.state.layout import StateLayout

#: A geometry predicate: cell-centre coordinate arrays -> boolean mask.
Region = Callable[..., np.ndarray]


def box(lo: Sequence[float], hi: Sequence[float]) -> Region:
    """Axis-aligned box region ``lo[d] <= x_d < hi[d]``."""
    lo_arr = tuple(float(v) for v in lo)
    hi_arr = tuple(float(v) for v in hi)

    def region(*coords: np.ndarray) -> np.ndarray:
        mask = np.ones(coords[0].shape, dtype=bool)
        for c, l, h in zip(coords, lo_arr, hi_arr):
            mask &= (c >= l) & (c < h)
        return mask

    return region


def sphere(center: Sequence[float], radius: float) -> Region:
    """Spherical (circular in 2D, interval in 1D) region of given radius."""
    ctr = tuple(float(v) for v in center)
    r2 = float(radius) ** 2

    def region(*coords: np.ndarray) -> np.ndarray:
        d2 = np.zeros(coords[0].shape, dtype=DTYPE)
        for c, x0 in zip(coords, ctr):
            d2 += (c - x0) ** 2
        return d2 <= r2

    return region


def halfspace(axis: int, threshold: float, *, side: str = "below") -> Region:
    """Half-space ``x_axis < threshold`` (side="below") or ``>=`` (side="above")."""
    if side not in ("below", "above"):
        raise ConfigurationError(f"side must be 'below' or 'above', got {side!r}")

    def region(*coords: np.ndarray) -> np.ndarray:
        c = coords[axis]
        return c < threshold if side == "below" else c >= threshold

    return region


@dataclass(frozen=True)
class Patch:
    """Uniform primitive state applied over a geometric region.

    Parameters
    ----------
    region:
        Geometry predicate from :func:`box` / :func:`sphere` /
        :func:`halfspace` (or any custom callable on the meshgrid).
    alpha_rho:
        Partial densities, one per component.
    velocity:
        Velocity components, one per spatial dimension.
    pressure:
        Mixture pressure.
    alpha:
        Advected volume fractions (``ncomp - 1`` values).
    smear:
        Optional diffuse-interface smearing width in physical units; when
        positive, the patch blends into the existing state over roughly
        this distance (sphere patches only), seeding the diffuse
        interface the scheme maintains.
    """

    region: Region
    alpha_rho: tuple[float, ...]
    velocity: tuple[float, ...]
    pressure: float
    alpha: tuple[float, ...]
    smear: float = 0.0


@dataclass
class Case:
    """A complete simulation setup producing the initial conservative field."""

    grid: StructuredGrid
    mixture: Mixture
    patches: list[Patch] = field(default_factory=list)

    @property
    def layout(self) -> StateLayout:
        return StateLayout(ncomp=self.mixture.ncomp, ndim=self.grid.ndim)

    def add(self, patch: Patch) -> "Case":
        self._validate(patch)
        self.patches.append(patch)
        return self

    def _validate(self, patch: Patch) -> None:
        lay = self.layout
        if len(patch.alpha_rho) != lay.ncomp:
            raise ConfigurationError(
                f"patch has {len(patch.alpha_rho)} partial densities, need {lay.ncomp}")
        if len(patch.velocity) != lay.ndim:
            raise ConfigurationError(
                f"patch has {len(patch.velocity)} velocity components, need {lay.ndim}")
        if len(patch.alpha) != lay.n_advected:
            raise ConfigurationError(
                f"patch has {len(patch.alpha)} volume fractions, need {lay.n_advected}")

    def primitive_values(self, patch: Patch) -> np.ndarray:
        """The patch's primitive vector as a 1D array in layout order."""
        return np.array([*patch.alpha_rho, *patch.velocity, patch.pressure,
                         *patch.alpha], dtype=DTYPE)

    def initial_primitive(self) -> np.ndarray:
        """Apply all patches in order and return the primitive field."""
        if not self.patches:
            raise ConfigurationError("case has no patches")
        lay = self.layout
        coords = self.grid.meshgrid()
        prim = np.empty((lay.nvars, *self.grid.shape), dtype=DTYPE)
        first = True
        for patch in self.patches:
            self._validate(patch)
            values = self.primitive_values(patch)
            mask = patch.region(*coords)
            if first:
                if not mask.all():
                    raise ConfigurationError(
                        "first patch must cover the whole domain (background)")
                prim[:] = values.reshape((-1,) + (1,) * lay.ndim)
                first = False
                continue
            if patch.smear > 0.0:
                weight = _smear_weight(mask, coords, patch.smear)
                prim += weight * (values.reshape((-1,) + (1,) * lay.ndim) - prim)
            else:
                prim[:, mask] = values[:, None]
        return prim

    def initial_conservative(self) -> np.ndarray:
        """The conservative initial field (what the solver marches)."""
        return prim_to_cons(self.layout, self.mixture, self.initial_primitive())


def _smear_weight(mask: np.ndarray, coords: tuple[np.ndarray, ...],
                  smear: float) -> np.ndarray:
    """Smooth 0..1 blending weight around the boundary of ``mask``.

    Uses a tanh profile of the signed distance to the region boundary,
    approximated by a distance transform built from the mask itself.
    """
    from scipy import ndimage

    inside = ndimage.distance_transform_edt(mask)
    outside = ndimage.distance_transform_edt(~mask)
    # Convert cell-count distances to physical distances using the mean
    # local spacing (adequate for mildly stretched grids).
    spacing = np.mean([float(np.mean(np.diff(np.unique(c)))) if np.unique(c).size > 1 else 1.0
                       for c in coords])
    signed = (inside - outside) * spacing
    return 0.5 * (1.0 + np.tanh(signed / max(smear, 1e-300)))
