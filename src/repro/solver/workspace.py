"""Preallocated buffer arena for the solver hot path.

The paper's central optimization story is memory management: flattening
derived types, coalescing through transposes, and compile-time-sized
``private`` arrays all exist to keep MFC's two hottest kernels from
allocating or copying inside the time loop.  The NumPy analog of that
discipline is a workspace: every padded-primitive scratch field, face
state, flux buffer, divergence accumulator, and RK stage array is
allocated once per :class:`~repro.solver.rhs.RHS` lifetime and reused by
every subsequent step, so a steady-state step performs no new
large-array allocations.

All workspace-backed code paths are **bitwise identical** to the
allocating reference paths (same operations in the same order, only the
destination buffers differ); this is enforced by property tests.

Thread-ownership rule
---------------------
The arena is built for one RHS/RK pipeline, which may execute its tiles
on a :class:`~repro.acc.gang.GangExecutor` thread pool.  Buffers divide
into two ownership classes:

* **Shared, disjointly written** — ``prim``, ``dqdt``, ``divu``,
  ``padded``, ``face_l``/``face_r``, ``flux``, ``u_face``,
  ``div_scratch``/``divu_scratch``, and the RK stage buffers.
  Concurrent tiles may read them anywhere (halo-overlapped reads) but
  must write only inside their own tile span, so no synchronisation is
  needed beyond the launch barrier.
* **Serial-only scratch** — ``weno_scratch`` and ``riemann_scratch``
  are whole-array temporaries for the *serial* in-place kernels.  They
  are a data race the moment two threads enter ``_weno3_into``/
  ``_weno5_into`` or a Riemann solve concurrently; threaded tiles must
  instead take a private set from :meth:`SolverWorkspace.thread_scratch`,
  which allocates lazily per worker thread (and per direction) and is
  reused across that worker's subsequent tiles and steps.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import numpy as np

from repro.backend import resolve_backend
from repro.common import DTYPE
from repro.fields.transpose import sweep_perm
from repro.grid.cartesian import StructuredGrid
from repro.riemann.common import RiemannScratch
from repro.state.layout import StateLayout
from repro.weno.stacked import (
    allocate_weno_scratch,
    narrow_scratch_rows,
    validate_weno_variant,
)

#: Number of scratch arrays the in-place chained WENO kernels need
#: (order-5 worst case: three candidate polynomials, three nonlinear
#: weights, two temporaries).  The stacked variant's differently-shaped
#: set comes from :func:`repro.weno.stacked.stacked_scratch_shapes`.
WENO_SCRATCH_COUNT = 8


class FusionScratch:
    """Tile-sized scratch arena of one fused sweep kernel.

    This is the fusion compiler's memory story: where the unfused
    pipeline spills field-sized padded/face/flux intermediates between
    stages, a fused kernel's intermediates live here, sized for one slab
    tile (``tile_width`` along the slab axis) so the whole pipeline's
    working set can stay L2-resident.  One arena belongs to one worker
    thread and one direction, mirroring the thread-ownership rule of
    :meth:`SolverWorkspace.thread_scratch`.

    ``transposed=True`` builds the axis-contiguous variant: the pipeline
    buffers in reconstruction-axis-last layout plus the small
    standard-layout face scratch the scatter and divergence stages use
    (with pre-permuted ``flux_t``/``uface_t`` views for the scatter).
    """

    def __init__(self, nvars: int, spatial: tuple[int, ...], ng: int,
                 d: int, tile_width: int, dtype,
                 weno_variant: str, weno_order: int,
                 transposed: bool = False, xp=np) -> None:
        ndim = len(spatial)
        shape = (nvars, *spatial)
        self.d = d
        self.transposed = transposed
        self.width_cap = tile_width
        self.weno_variant = weno_variant
        self.weno_order = weno_order
        self.xp = xp

        def new(s):
            return xp.empty(s, dtype=dtype)

        # Reconstruction-axis-last face shape (the WENO layout).
        last = ([nvars] + [spatial[k] for k in range(ndim) if k != d]
                + [spatial[d] + 1])
        if transposed:
            perm = sweep_perm(ndim + 1, d + 1)
            self.perm = perm
            #: Standard-layout array axis the slabs cut (axis 1 of every
            #: transposed buffer).
            self.tiled_axis = perm[1]
            w = min(tile_width, last[1])
            tface = list(last)
            tface[1] = w
            tpad = list(tface)
            tpad[-1] = spatial[d] + 2 * ng
            self.tpad = new(tpad)
            self.tvl = new(tface)
            self.tvr = new(tface)
            self.tflux = new(tface)
            self.tuface = new(tface[1:])
            self.wscr = allocate_weno_scratch(weno_variant, weno_order,
                                              tuple(tface), dtype, xp=xp)
            self.rscr = RiemannScratch(tuple(tface), dtype=dtype, xp=xp)
            fstd = list(shape)
            fstd[d + 1] += 1
            fstd[self.tiled_axis] = min(tile_width, fstd[self.tiled_axis])
            self.flux = new(fstd)
            self.uface = new(fstd[1:])
            dstd = list(shape)
            dstd[self.tiled_axis] = fstd[self.tiled_axis]
            self.dscr = new(dstd)
            self.dvscr = new(dstd[1:])
        else:
            #: Spatial slab axis of the strided fused kernels: the first
            #: spatial axis perpendicular to the reconstruction axis
            #: (None in 1D — the single tile is the whole field).
            self.slab_axis = None if ndim == 1 else (1 if d == 0 else 0)
            pshape = list(shape)
            pshape[d + 1] += 2 * ng
            fshape = list(shape)
            fshape[d + 1] += 1
            wlast = list(last)
            if self.slab_axis is not None:
                w = min(tile_width, spatial[self.slab_axis])
                pshape[self.slab_axis + 1] = w
                fshape[self.slab_axis + 1] = w
                wlast[1] = w  # the slab is axis 1 of every axis-last shape
            self.pad = new(pshape)
            self.vl = new(fshape)
            self.vr = new(fshape)
            self.flux = new(fshape)
            self.uface = new(fshape[1:])
            self.wscr = allocate_weno_scratch(weno_variant, weno_order,
                                              tuple(wlast), dtype, xp=xp)
            self.rscr = RiemannScratch(tuple(fshape), dtype=dtype, xp=xp)
            dshape = list(shape)
            if self.slab_axis is not None:
                dshape[self.slab_axis + 1] = w
            self.dscr = new(dshape)
            self.dvscr = new(dshape[1:])

    def narrow(self, count: int):
        """Views of the arena narrowed to a ``count``-wide slab tile.

        The last tile of an uneven split is narrower than the
        allocation; narrowing is pure slicing, so a re-narrowed arena
        aliases the same memory and stays cached across tiles and steps.
        """
        if self.transposed:
            wscr = narrow_scratch_rows(self.wscr, self.weno_variant,
                                       self.weno_order, count)
            t = (slice(None), slice(0, count))
            std = [slice(None)] * self.flux.ndim
            std[self.tiled_axis] = slice(0, count)
            std = tuple(std)
            flux = self.flux[std]
            uface = self.uface[std[1:]]
            return SimpleNamespace(
                tpad=self.tpad[t], tvl=self.tvl[t], tvr=self.tvr[t],
                tflux=self.tflux[t], tuface=self.tuface[:count],
                flux=flux, uface=uface,
                flux_t=self.xp.transpose(flux, self.perm),
                uface_t=self.xp.transpose(uface,
                                          tuple(p - 1 for p in self.perm[1:])),
                wscr=wscr, rscr=self.rscr.view(t),
                dscr=self.dscr[std], dvscr=self.dvscr[std[1:]])
        if self.slab_axis is None:
            return self  # 1D: the single tile is the full arena
        wscr = narrow_scratch_rows(self.wscr, self.weno_variant,
                                   self.weno_order, count)
        ci = (slice(None),) * (self.slab_axis + 1) + (slice(0, count),)
        si = ci[1:]
        return SimpleNamespace(
            pad=self.pad[ci], vl=self.vl[ci], vr=self.vr[ci],
            flux=self.flux[ci], uface=self.uface[si],
            wscr=wscr, rscr=self.rscr.view(ci),
            dscr=self.dscr[ci], dvscr=self.dvscr[si])

    def _arrays(self):
        if self.transposed:
            yield from (self.tpad, self.tvl, self.tvr, self.tflux,
                        self.tuface)
        else:
            yield from (self.pad, self.vl, self.vr)
        yield from (self.flux, self.uface, self.dscr, self.dvscr)
        yield from self.wscr
        for name in RiemannScratch.__slots__:
            yield getattr(self.rscr, name)


class SolverWorkspace:
    """Reusable buffers for one RHS/RK pipeline on a fixed grid.

    Parameters
    ----------
    layout:
        State layout (fixes the variable count).
    grid:
        Structured grid (fixes the spatial shape).
    ng:
        Ghost width of the reconstruction (from
        :func:`repro.weno.halo_width`).

    Attributes
    ----------
    prim:
        Primitive-field buffer shared by the driver's dt computation and
        the RHS (one ``cons_to_prim`` per RHS evaluation).
    dqdt, divu:
        RHS accumulators (conservative tendency, face-velocity
        divergence).
    padded, face_l, face_r, flux, u_face:
        Per-direction scratch: ghost-padded primitives, reconstructed
        left/right face states, Riemann flux, and interface velocity.
    t_padded, t_face_l, t_face_r, t_flux, t_u_face, t_riemann_scratch:
        The same pipeline buffers in the axis-contiguous transposed
        layout (reconstruction axis last), allocated only for the
        directions in ``transposed_axes`` and reused every step.
    weno_scratch:
        Per-direction tuples of scratch arrays (reconstruction axis
        last) for the in-place WENO kernels.
    div_scratch, divu_scratch:
        Flux-divergence temporaries.
    rk_stage, rk_result, rk_tmp:
        Shu-Osher stage buffers; ``rk_result`` holds the step output and
        is safely reusable as the next step's input.
    rollback:
        Pre-step snapshot of the conserved state for the driver's
        failure guard: the guarded step copies ``q`` here before
        advancing and restores from it on a failed validation, so
        rollback-retry performs zero steady-state allocations.  Written
        only by the (serial) driver, never by kernels.
    """

    def __init__(self, layout: StateLayout, grid: StructuredGrid, ng: int,
                 dtype=DTYPE, transposed_axes: frozenset[int] | tuple = (),
                 weno_variant: str = "chained",
                 weno_order: int | None = None,
                 fusion: bool = False,
                 batch: int | None = None,
                 backend=None) -> None:
        nvars = layout.nvars
        #: The execution backend this arena allocates on; its namespace
        #: (``xp``) is what every kernel resolves from the buffers.
        self.backend = resolve_backend(backend)
        self.xp = self.backend.xp
        if batch is not None and (not isinstance(batch, int)
                                  or isinstance(batch, bool) or batch < 1):
            raise ValueError(
                f"batch must be a positive integer or None, got {batch!r}")
        #: Ensemble batch width, or ``None`` for a single-case arena.
        #: Batched arenas are shaped for the stacked state
        #: ``(nvars, batch, *grid.shape)`` — the batch axis behaves as a
        #: leading *virtual spatial axis* that is never swept, so every
        #: per-direction buffer list carries a placeholder at index 0 to
        #: keep virtual-direction indexing aligned.
        self.batch = batch
        self._nb = 0 if batch is None else 1
        spatial = grid.shape if batch is None else (batch, *grid.shape)
        ndim = len(spatial)
        self.shape = (nvars, *spatial)
        self.dtype = np.dtype(dtype)
        #: Fused-kernel mode: the per-direction field-sized pipeline
        #: buffers (padded/face/flux/divergence scratch and the ``t_*``
        #: transposed set) are *not* allocated — fused kernels keep
        #: those intermediates in tile-sized :class:`FusionScratch`
        #: arenas instead, which is the fusion compiler's memory win.
        self.fusion = bool(fusion)
        self._ng = ng
        self._spatial = tuple(spatial)
        self._nvars = nvars
        #: WENO kernel variant the scratch sets are shaped for (the
        #: stacked variant's candidate-stacked/extended buffers differ
        #: from the chained kernels' homogeneous 8-array set).
        self.weno_variant = validate_weno_variant(weno_variant)
        if self.weno_variant != "chained" and weno_order is None:
            raise ValueError(
                "weno_order is required for non-chained WENO scratch")
        self.weno_order = weno_order if weno_order is not None else 0
        #: Directions the sweep engine runs in the axis-contiguous
        #: transposed layout; fixes which ``t_*`` buffers exist.
        self.transposed_axes = frozenset(transposed_axes)

        def new(shape):
            return self.xp.empty(shape, dtype=self.dtype)

        # Field-sized buffers.
        self.prim = new(self.shape)
        self.dqdt = new(self.shape)
        self.divu = new(spatial)
        if not self.fusion:
            self.div_scratch = new(self.shape)
            self.divu_scratch = new(spatial)

        # SSP-RK stage buffers (two alternating stages + result + temp).
        self.rk_stage = (new(self.shape), new(self.shape))
        self.rk_result = new(self.shape)
        self.rk_tmp = new(self.shape)

        # Failure-guard rollback snapshot (driver-owned).
        self.rollback = new(self.shape)

        # Per-direction pipeline buffers.
        self.padded: list[np.ndarray] = []
        self.face_l: list[np.ndarray] = []
        self.face_r: list[np.ndarray] = []
        self.flux: list[np.ndarray] = []
        self.u_face: list[np.ndarray] = []
        self.weno_scratch: list[tuple[np.ndarray, ...]] = []
        self.riemann_scratch: list[RiemannScratch] = []
        self._weno_shapes: list[list[int]] = []
        self._face_shapes: list[list[int]] = []
        for d in range(ndim):
            pshape = list(self.shape)
            pshape[d + 1] += 2 * ng
            fshape = list(self.shape)
            fshape[d + 1] += 1
            # WENO kernels run with the reconstruction axis moved last.
            last = ([nvars]
                    + [spatial[k] for k in range(ndim) if k != d]
                    + [spatial[d] + 1])
            self._weno_shapes.append(last)
            self._face_shapes.append(fshape)
            if self.fusion:
                continue
            if d < self._nb:
                # Batch axis: never swept, so no pipeline buffers —
                # placeholders keep virtual-direction indexing aligned.
                self.padded.append(None)
                self.face_l.append(None)
                self.face_r.append(None)
                self.flux.append(None)
                self.u_face.append(None)
                self.weno_scratch.append(())
                self.riemann_scratch.append(None)
                continue
            self.padded.append(new(pshape))
            self.face_l.append(new(fshape))
            self.face_r.append(new(fshape))
            self.flux.append(new(fshape))
            self.u_face.append(new(fshape[1:]))
            self.weno_scratch.append(
                allocate_weno_scratch(self.weno_variant, self.weno_order,
                                      tuple(last), self.dtype, xp=self.xp))
            self.riemann_scratch.append(
                RiemannScratch(tuple(fshape), dtype=self.dtype, xp=self.xp))

        # Axis-contiguous transposed sweep buffers (paper §III.D): for
        # each direction the engine transposes, the padded primitive
        # block, both face states, the flux, and the interface velocity
        # in the layout with the reconstruction axis last.  Face shapes
        # coincide with the reconstruction-axis-last ``weno_scratch``
        # shapes, so the WENO scratch is shared between layouts.
        self.t_padded: dict[int, np.ndarray] = {}
        self.t_face_l: dict[int, np.ndarray] = {}
        self.t_face_r: dict[int, np.ndarray] = {}
        self.t_flux: dict[int, np.ndarray] = {}
        self.t_u_face: dict[int, np.ndarray] = {}
        self.t_riemann_scratch: dict[int, RiemannScratch] = {}
        for d in sorted(self.transposed_axes):
            if not self._nb <= d < ndim:
                raise ValueError(
                    f"transposed axis {d} outside sweepable virtual axes "
                    f"[{self._nb}, {ndim})")
            if self.fusion:
                continue
            tface = self._weno_shapes[d]
            tpad = list(tface)
            tpad[-1] = spatial[d] + 2 * ng
            self.t_padded[d] = new(tpad)
            self.t_face_l[d] = new(tface)
            self.t_face_r[d] = new(tface)
            self.t_flux[d] = new(tface)
            self.t_u_face[d] = new(tface[1:])
            self.t_riemann_scratch[d] = RiemannScratch(tuple(tface),
                                                       dtype=self.dtype,
                                                       xp=self.xp)

        # Per-worker kernel scratch, keyed (thread ident, direction,
        # layout); see the module docstring's thread-ownership rule.
        self._thread_scratch: dict[tuple[int, int, bool],
                                   tuple[int, tuple[np.ndarray, ...],
                                         RiemannScratch]] = {}
        #: Per-worker fused-kernel arenas, same key scheme.
        self._fusion_scratch: dict[tuple[int, int, bool], FusionScratch] = {}
        self._scratch_lock = threading.Lock()

    # ------------------------------------------------------------------
    def fusion_scratch(self, d: int, tile_width: int, *,
                       transposed: bool = False) -> FusionScratch:
        """Private :class:`FusionScratch` arena for the calling thread.

        Same lazy per-worker caching as :meth:`thread_scratch`: the
        arena is built (or rebuilt, if a wider tile shows up) for slabs
        of at most ``tile_width``, and callers take
        :meth:`FusionScratch.narrow` views for their exact tile extent.
        """
        key = (threading.get_ident(), d, transposed)
        with self._scratch_lock:
            scr = self._fusion_scratch.get(key)
            if scr is None or scr.width_cap < tile_width:
                scr = FusionScratch(self._nvars, self._spatial, self._ng, d,
                                    tile_width, self.dtype,
                                    self.weno_variant, self.weno_order,
                                    transposed=transposed, xp=self.xp)
                self._fusion_scratch[key] = scr
        return scr

    # ------------------------------------------------------------------
    def thread_scratch(self, d: int, tile_width: int, *,
                       transposed: bool = False):
        """Private ``(weno_scratch, riemann_scratch)`` for the calling thread.

        Allocated lazily the first time a pool worker asks, sized for
        tiles of at most ``tile_width`` along the tiled (slowest) axis
        — the face-tile axis for direction 0, the spatial-0 slab axis
        otherwise — and cached for the worker's later tiles and steps.
        Callers narrow the buffers to their exact tile extent
        (``s[..., :count]`` / :meth:`RiemannScratch.view`) before use.

        With ``transposed=True`` both scratch sets take the
        axis-contiguous layout of the transposed sweep engine (the
        reconstruction-axis-last face shape, tiled along array axis 1),
        cached separately from the strided sets.
        """
        key = (threading.get_ident(), d, transposed)
        with self._scratch_lock:
            entry = self._thread_scratch.get(key)
            if entry is None or entry[0] < tile_width:
                if transposed:
                    wshape = list(self._weno_shapes[d])
                    wshape[1] = min(tile_width, wshape[1])
                    fshape = wshape
                else:
                    wshape = list(self._weno_shapes[d])
                    fshape = list(self._face_shapes[d])
                    tiled_axis = len(wshape) - 1 if d == 0 else 1
                    wshape[tiled_axis] = min(tile_width, wshape[tiled_axis])
                    fshape[1] = min(tile_width, fshape[1])
                weno = allocate_weno_scratch(self.weno_variant,
                                             self.weno_order, tuple(wshape),
                                             self.dtype, xp=self.xp)
                entry = (tile_width, weno,
                         RiemannScratch(tuple(fshape), dtype=self.dtype,
                                        xp=self.xp))
                self._thread_scratch[key] = entry
        return entry[1], entry[2]

    # ------------------------------------------------------------------
    def compatible(self, q) -> bool:
        """Whether ``q`` matches the shape/dtype this workspace was built for."""
        if tuple(q.shape) != self.shape:
            return False
        qd = getattr(q, "dtype", None)
        # torch dtypes stringify as "torch.float64"; numpy's as "float64".
        return qd == self.dtype or str(qd).endswith(self.dtype.name)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the arena (for memory reports)."""
        total = 0
        for arr in self._all_arrays():
            total += arr.nbytes
        return total

    def _all_arrays(self):
        yield from (self.prim, self.dqdt, self.divu, self.rk_result,
                    self.rk_tmp, self.rollback)
        if not self.fusion:
            yield self.div_scratch
            yield self.divu_scratch
        yield from self.rk_stage
        for group in (self.padded, self.face_l, self.face_r,
                      self.flux, self.u_face):
            for arr in group:
                if arr is not None:  # batch-axis placeholder
                    yield arr
        for buffers in (self.t_padded, self.t_face_l, self.t_face_r,
                        self.t_flux, self.t_u_face):
            yield from buffers.values()
        for rs in self.t_riemann_scratch.values():
            for name in RiemannScratch.__slots__:
                yield getattr(rs, name)
        for group in self.weno_scratch:
            yield from group
        for rs in self.riemann_scratch:
            if rs is None:  # batch-axis placeholder
                continue
            for name in RiemannScratch.__slots__:
                yield getattr(rs, name)
        for _, weno, rs in list(self._thread_scratch.values()):
            yield from weno
            for name in RiemannScratch.__slots__:
                yield getattr(rs, name)
        for scr in list(self._fusion_scratch.values()):
            yield from scr._arrays()
