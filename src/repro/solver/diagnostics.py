"""Volume-integrated flow diagnostics.

The quantities MFC's validation cases track (paper §III.F cites
shock-bubble/droplet and Taylor-Green vortex validations): kinetic
energy, enstrophy, maximum Mach number, phase volumes, and an interface
"mixedness" measure for diffuse-interface runs.
"""

from __future__ import annotations

import numpy as np

from repro.common import ConfigurationError
from repro.eos.mixture import Mixture
from repro.grid.cartesian import StructuredGrid
from repro.state.conversions import full_alphas
from repro.state.layout import StateLayout


def kinetic_energy(layout: StateLayout, grid: StructuredGrid,
                   prim: np.ndarray) -> float:
    """Volume integral of :math:`\\tfrac12 \\rho |u|^2`."""
    rho = prim[layout.partial_densities].sum(axis=0)
    ke = 0.5 * rho * (prim[layout.velocity] ** 2).sum(axis=0)
    return float((ke * grid.cell_volumes()).sum())


def enstrophy(layout: StateLayout, grid: StructuredGrid,
              prim: np.ndarray) -> float:
    """Volume integral of :math:`\\tfrac12 |\\omega|^2` (2D/3D).

    Central-difference vorticity on the (possibly stretched) grid.
    """
    if layout.ndim < 2:
        raise ConfigurationError("enstrophy needs at least 2 dimensions")
    vel = prim[layout.velocity]
    coords = [grid.centers(d) for d in range(layout.ndim)]

    def ddx(f, d):
        return np.gradient(f, coords[d], axis=d)

    if layout.ndim == 2:
        omega2 = (ddx(vel[1], 0) - ddx(vel[0], 1)) ** 2
    else:
        wx = ddx(vel[2], 1) - ddx(vel[1], 2)
        wy = ddx(vel[0], 2) - ddx(vel[2], 0)
        wz = ddx(vel[1], 0) - ddx(vel[0], 1)
        omega2 = wx ** 2 + wy ** 2 + wz ** 2
    return float((0.5 * omega2 * grid.cell_volumes()).sum())


def max_mach(layout: StateLayout, mixture: Mixture, prim: np.ndarray) -> float:
    """Largest local Mach number over the field."""
    rho = prim[layout.partial_densities].sum(axis=0)
    alphas = full_alphas(layout, prim[layout.advected])
    c = mixture.sound_speed(alphas, rho, prim[layout.pressure])
    speed = np.sqrt((prim[layout.velocity] ** 2).sum(axis=0))
    return float((speed / c).max())


def phase_volumes(layout: StateLayout, grid: StructuredGrid,
                  prim: np.ndarray) -> np.ndarray:
    """Volume occupied by each component: :math:`\\int \\alpha_i\\,dV`."""
    alphas = full_alphas(layout, prim[layout.advected])
    vol = grid.cell_volumes()
    return np.array([(a * vol).sum() for a in alphas])


def mixedness(layout: StateLayout, grid: StructuredGrid,
              prim: np.ndarray) -> float:
    """Diffuse-interface extent: :math:`\\int 4\\alpha(1-\\alpha)\\,dV`.

    Zero for perfectly segregated two-phase fields; grows as numerical
    diffusion (or physical mixing) smears the interface.  Defined for
    two-component mixtures.
    """
    if layout.ncomp != 2:
        raise ConfigurationError("mixedness is defined for two components")
    alpha = prim[layout.advected][0]
    return float((4.0 * alpha * (1.0 - alpha) * grid.cell_volumes()).sum())


def interface_cells(layout: StateLayout, prim: np.ndarray,
                    *, lo: float = 0.01, hi: float = 0.99) -> int:
    """Number of cells whose first volume fraction lies strictly inside
    ``(lo, hi)`` — the diffuse-interface band width in cells."""
    if layout.n_advected == 0:
        return 0
    alpha = prim[layout.advected][0]
    return int(((alpha > lo) & (alpha < hi)).sum())
