"""Viscous fluxes for the five-equation model.

MFC's numerical method follows Coralic & Colonius's finite-volume WENO
scheme *for viscous compressible multicomponent flows*; the GPU paper
profiles the inviscid kernels, but the solver it ports carries viscous
terms.  This module adds the Newtonian viscous stress divergence

.. math::

   \\partial_t(\\rho u) \\mathrel{+}= \\nabla\\cdot\\tau, \\qquad
   \\partial_t(\\rho E) \\mathrel{+}= \\nabla\\cdot(\\tau u),

with :math:`\\tau = \\mu\\,(\\nabla u + \\nabla u^T) -
\\tfrac{2}{3}\\mu (\\nabla\\cdot u) I` and a volume-fraction-weighted
mixture viscosity :math:`\\mu_m = \\sum_i \\alpha_i \\mu_i`, discretised
with central differences (second order, adequate for the resolved-scale
diffusion these laptop-scale cases need).  Heat conduction is omitted,
as in MFC's default five-equation configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import array_namespace
from repro.common import ConfigurationError
from repro.grid.cartesian import StructuredGrid
from repro.state.conversions import full_alphas
from repro.state.layout import StateLayout


@dataclass(frozen=True)
class Viscosity:
    """Per-component dynamic viscosities (Pa s)."""

    mu: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.mu or any(m < 0.0 for m in self.mu):
            raise ConfigurationError("viscosities must be non-negative")

    def mixture_mu(self, layout: StateLayout, prim: np.ndarray) -> np.ndarray:
        """Volume-fraction-weighted mixture viscosity field."""
        if len(self.mu) != layout.ncomp:
            raise ConfigurationError(
                f"{len(self.mu)} viscosities for {layout.ncomp} components")
        xp = array_namespace(prim)
        alphas = full_alphas(layout, prim[layout.advected])
        mus = xp.asarray(np.asarray(self.mu, dtype=prim.dtype))
        return xp.tensordot(mus, alphas, axes=(0, 0))


def viscous_rhs(layout: StateLayout, grid: StructuredGrid, prim: np.ndarray,
                viscosity: Viscosity) -> np.ndarray:
    """Viscous contribution to ``dq/dt`` (momentum and energy rows only).

    Central differences via :func:`numpy.gradient` on (possibly
    stretched) cell-centre coordinates; one-sided at domain boundaries,
    which is consistent with the extrapolation BCs the viscous cases
    use.
    """
    xp = array_namespace(prim)
    mu = viscosity.mixture_mu(layout, prim)
    vel = [prim[layout.momentum_component(d)] for d in range(layout.ndim)]
    # Grid coordinates live on the host; asarray is the sanctioned H2D
    # entry (identity for NumPy, so bitwise neutral).
    coords = [xp.asarray(grid.centers(d)) for d in range(layout.ndim)]

    def ddx(f, d: int):
        if f.shape[d] < 2:
            return xp.zeros_like(f)
        return xp.gradient(f, coords[d], axis=d)

    # Velocity gradient tensor g[i][j] = d u_i / d x_j.
    g = [[ddx(vel[i], j) for j in range(layout.ndim)]
         for i in range(layout.ndim)]
    div_u = sum(g[i][i] for i in range(layout.ndim))

    # Stress tensor tau[i][j].
    tau = [[mu * (g[i][j] + g[j][i]) for j in range(layout.ndim)]
           for i in range(layout.ndim)]
    for i in range(layout.ndim):
        tau[i][i] = tau[i][i] - (2.0 / 3.0) * mu * div_u

    dqdt = xp.zeros_like(prim)
    for i in range(layout.ndim):
        comp = layout.momentum_component(i)
        for j in range(layout.ndim):
            dqdt[comp] += ddx(tau[i][j], j)
    # Energy: div(tau . u).
    for j in range(layout.ndim):
        work = sum(tau[i][j] * vel[i] for i in range(layout.ndim))
        dqdt[layout.energy] += ddx(work, j)
    return dqdt
