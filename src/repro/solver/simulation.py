"""Simulation driver: time marching, state checks, grind-time accounting.

The driver mirrors MFC's main loop: compute a CFL-limited step, advance
with SSP-RK3, periodically validate the state, and keep the conserved
totals and wall-time statistics the paper's performance figures are
built from.  Grind time follows the paper's definition —

    nanoseconds per grid cell, per PDE, per right-hand-side evaluation —

where an SSP-RK3 step performs three RHS evaluations.

Resilient marching
------------------
Multi-day production campaigns must survive both numerical blow-ups and
machine faults, so the driver layers three defenses on top of the plain
loop (all off by default, all bitwise neutral when idle):

* a **step guard** (``retry=RetryPolicy(...)``): every step is
  validated post hoc; a failed step rolls the state back to the
  workspace's rollback snapshot and re-runs under the policy — first at
  the same dt (healing transient faults bitwise identically to a clean
  run), then with dt backoff, then down the scheme-escalation ladder —
  raising :class:`~repro.solver.resilience.SimulationDivergedError`
  only when everything is exhausted;
* **periodic validation** (``validate_every``) and **rotating durable
  checkpoints** (``checkpoint_every`` + ``checkpoint_dir``) inside
  :meth:`run`, with :meth:`restore_latest` falling back past corrupt
  checkpoints on restart;
* a pluggable **fault injector** (any object with an
  ``apply(q, step=..., attempt=...) -> int`` method, e.g.
  :class:`repro.faults.CellFaultPlan`) that corrupts the post-step
  state deterministically so the recovery machinery can be tested
  end to end.

Every recovery action is tallied in :attr:`Simulation.recovery`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.backend import (
    array_namespace,
    precision_dtype,
    resolve_backend,
    to_host_array,
)
from repro.bc.boundary import BC, BoundarySet
from repro.common import ConfigurationError, NumericsError, Stopwatch, WallTimer
from repro.solver.case import Case
from repro.solver.resilience import (
    ESCALATION_ORDERS,
    RecoveryCounters,
    RetryPolicy,
    SimulationDivergedError,
    check_state,
)
from repro.solver.rhs import RHS, RHSConfig
from repro.solver.sweep import validate_fusion
from repro.state.conversions import cons_to_prim
from repro.timestepping.cfl import cfl_dt
from repro.timestepping.ssp_rk import SSP_SCHEMES, ssp_rk_step


def _scheme_name(order: int) -> str:
    """Human name of a reconstruction order (``weno5``, ``first_order``)."""
    return "first_order" if order <= 1 else f"weno{order}"


@dataclass(frozen=True)
class StepRecord:
    """Bookkeeping for one completed time step."""

    step: int
    time: float
    dt: float
    wall_seconds: float
    #: Rollback-retries the guarded step needed before it passed
    #: validation (0 on the unguarded path and for clean steps).
    retries: int = 0


@dataclass
class Simulation:
    """Time-marches a :class:`~repro.solver.case.Case`.

    Parameters
    ----------
    case:
        Grid, mixture, and initial condition.
    bcs:
        Physical boundary conditions.
    cfl:
        CFL number for adaptive stepping (ignored when ``fixed_dt`` set).
    rk_order:
        SSP-RK order (1, 2, or 3; MFC uses 3).
    check_every:
        Validate the state (finite, positive density) every this many
        steps; 0 disables checks.
    threads:
        Worker threads for the thread-tiled execution backend (the
        host realisation of ``acc parallel loop gang``).  ``1`` (the
        default) takes the serial path with zero executor overhead;
        values > 1 tile the RHS hot path and the RK axpy stages across
        a thread pool, bitwise identically to serial.  Requires
        ``use_workspace=True`` to take effect.
    ranks:
        Process count for multi-process block-decomposed runs (the
        host realisation of MPI ranks; see
        :class:`repro.cluster.ProcessCluster`).  ``1`` (the default)
        keeps the in-process driver; values > 1 make :meth:`run`
        delegate the whole march to a process cluster — one process
        per rank, halos exchanged through shared memory — bitwise
        identical to the serial march.  Incompatible with
        ``threads > 1``, ``retry``, ``tuning``, and
        ``fault_injector`` (rank faults are injected through
        :class:`repro.cluster.RankFault` instead); the merged halo
        counters land in :attr:`halo_counters` after the run.
    cluster_timeout:
        Halo-wait deadline in seconds for multi-process runs (default
        30); the parent's no-progress watchdog uses it too, re-armed on
        every observed heartbeat, so it bounds a single stall, not the
        run length.  Raise it when one step of the local block can
        legitimately take longer than the default.
    max_restarts:
        How many rank-failure restarts a multi-process run may attempt
        (from the newest common checkpoint) before giving up with
        :class:`~repro.common.ClusterError` (default 1).
    tile_device:
        Optional :class:`~repro.hardware.DeviceSpec` (or catalog name)
        whose L2 capacity sizes the tiles; see
        :func:`repro.hardware.suggest_tile_count`.
    sweep_layout:
        Memory layout of the RHS direction sweeps: ``"strided"`` (the
        default), ``"transposed"`` (axis-contiguous sweep engine for
        the non-contiguous directions), or ``"auto"`` (per-direction
        heuristic; see :mod:`repro.solver.sweep`).  Bitwise identical
        either way.  Named ``layout`` in case files and on the CLI;
        the Python field avoids shadowing the state layout attribute.
    fusion:
        Kernel-fusion mode of the RHS direction sweeps (see
        :mod:`repro.acc.fusion`): ``"off"`` (default) runs the
        reference stage-at-a-time pipeline, ``"on"`` compiles each
        sweep's pad → WENO → Riemann → divergence chain into one
        cached per-tile kernel (requires ``use_workspace=True``),
        ``"auto"`` fuses whenever the workspace is on.  Bitwise
        identical either way; also a tuner axis.
    retry:
        Optional :class:`~repro.solver.resilience.RetryPolicy` (or the
        equivalent dict) enabling the guarded step with
        rollback-retry.  ``None`` (the default) keeps the unguarded
        fast path, bitwise identical to previous behaviour.
    validate_every:
        Extra :meth:`validate_state` cadence applied by :meth:`run`
        *after* the per-step ``check_every`` logic; 0 (default) off.
    checkpoint_every / checkpoint_dir / checkpoint_keep:
        Rotating durable checkpoints every N steps of :meth:`run` into
        ``checkpoint_dir`` keeping the newest ``checkpoint_keep``
        files; 0 (default) disables auto-checkpointing.
    fault_injector:
        Optional fault-injection plan (duck-typed: ``apply(q, step=...,
        attempt=...) -> int`` corrupting ``q`` in place and returning
        the number of cells touched), called on every candidate
        post-step state.  Test/chaos-engineering hook.
    tuning:
        Execution-plan selection over the kernel-variant registry
        (:mod:`repro.tuning`): ``"off"`` (default) keeps the configured
        ``threads``/``sweep_layout`` with the reference kernels;
        ``"auto"`` runs the empirical autotuner (consulting the
        persistent tuning cache — a cache hit performs zero timing
        runs) and adopts the winning plan; a
        :class:`~repro.tuning.TuningPlan` (or its dict form) applies a
        hand-picked plan.  Every plan is bitwise identical in results —
        tuning only moves time.  The resolved plan is exposed as
        :attr:`tuning_plan` (None when off), the tuner (when used) as
        :attr:`tuner`.
    tuning_cache:
        Cache file for ``tuning="auto"``; defaults to
        ``$REPRO_TUNING_CACHE`` or ``.repro_tuning/cache.json``.
    backend:
        Execution backend for the hot path (name or
        :class:`repro.backend.Backend`); ``None``/``"numpy"`` (the
        default) is bitwise identical to the pre-backend code.  The
        state lives on the backend's device for the whole march; host
        consumers (checkpoints, validation, conserved totals, halo
        exchange) receive explicit device-to-host copies.  See
        ``docs/backends.md``.
    precision:
        State dtype: ``"float64"`` (default) or ``"float32"``.  An
        explicit, validated choice — never tuner-selected — because it
        changes answers; float32 runs trade accuracy for the halved
        memory traffic the roofline model predicts.  Incompatible with
        ``ranks > 1`` (cluster workers march in float64).
    """

    case: Case
    bcs: BoundarySet
    config: RHSConfig = field(default_factory=RHSConfig)
    cfl: float = 0.5
    rk_order: int = 3
    fixed_dt: float | None = None
    check_every: int = 10
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    #: Preallocate all RHS/RK buffers once and reuse them every step
    #: (bitwise identical to the allocating path; see
    #: :mod:`repro.solver.workspace`).
    use_workspace: bool = True
    threads: int = 1
    ranks: int = 1
    cluster_timeout: float = 30.0
    max_restarts: int = 1
    tile_device: object | None = None
    sweep_layout: str = "strided"
    fusion: str = "off"
    retry: RetryPolicy | dict | None = None
    validate_every: int = 0
    checkpoint_every: int = 0
    checkpoint_dir: str | Path | None = None
    checkpoint_keep: int = 3
    fault_injector: object | None = None
    tuning: object = "off"
    tuning_cache: str | Path | None = None
    backend: object = None
    precision: str = "float64"

    def __post_init__(self) -> None:
        if self.rk_order not in SSP_SCHEMES:
            raise ConfigurationError(f"unsupported RK order {self.rk_order}")
        validate_fusion(self.fusion)
        if isinstance(self.retry, dict):
            self.retry = RetryPolicy.from_dict(self.retry)
        for name in ("validate_every", "checkpoint_every"):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0, got {getattr(self, name)}")
        if self.checkpoint_every and self.checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir")
        if self.ranks < 1:
            raise ConfigurationError(
                f"ranks must be a positive integer, got {self.ranks}")
        if self.cluster_timeout <= 0:
            raise ConfigurationError(
                f"cluster_timeout must be positive, got {self.cluster_timeout}")
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}")
        self.backend = resolve_backend(self.backend)
        self._dtype = precision_dtype(self.precision)
        if self.ranks > 1:
            if self.precision != "float64":
                raise ConfigurationError(
                    "ranks > 1 marches in float64 (cluster workers are "
                    "not precision-aware); drop precision or ranks")
            if self.threads > 1:
                raise ConfigurationError(
                    "ranks > 1 is incompatible with threads > 1 "
                    "(pick one parallel backend)")
            if self.retry is not None:
                raise ConfigurationError(
                    "ranks > 1 does not support the rollback-retry guard")
            if self.tuning not in (None, "off"):
                raise ConfigurationError(
                    "ranks > 1 does not support tuning")
            if self.fault_injector is not None:
                raise ConfigurationError(
                    "ranks > 1 does not support cell fault injectors; "
                    "inject rank faults with repro.cluster.RankFault "
                    "through ProcessCluster")
        self.layout = self.case.layout
        self.mixture = self.case.mixture
        self.grid = self.case.grid
        self.q = self.case.initial_conservative()
        #: Resolved :class:`~repro.tuning.TuningPlan` (None with tuning
        #: off) and the :class:`~repro.tuning.Autotuner` that produced
        #: it (None unless ``tuning="auto"``).
        self.tuning_plan = None
        self.tuner = None
        self._resolve_tuning()
        plan = self.tuning_plan
        if plan is not None:
            # The plan's knobs replace the configured ones (that is the
            # point of tuning); the fields are updated so the driver's
            # own record of its configuration stays truthful.
            self.threads = plan.threads
            self.sweep_layout = plan.sweep_layout
            self.fusion = plan.fusion
            if getattr(plan, "backend", None):
                self.backend = resolve_backend(plan.backend)
        # H2D: the state moves onto the execution backend once the plan
        # is settled (the tuner measures on the host array above).
        # Identity for the default numpy/float64 configuration.
        self.q = self.backend.from_host(self.q, dtype=self._dtype)
        self.rhs = RHS(self.layout, self.mixture, self.grid, self.bcs,
                       self.config, stopwatch=self.stopwatch,
                       use_workspace=self.use_workspace,
                       threads=self.threads, tile_device=self.tile_device,
                       sweep_layout=self.sweep_layout, fusion=self.fusion,
                       weno_variant=(plan.weno_variant if plan is not None
                                     else "chained"),
                       riemann_variant=(plan.riemann_variant
                                        if plan is not None else "reference"),
                       tiles=plan.tiles if plan is not None else None,
                       backend=self.backend, dtype=self._dtype)
        self.time = 0.0
        self.step_count = 0
        self.history: list[StepRecord] = []
        #: Tally of every recovery action (retries, rollbacks,
        #: checkpoints, restarts, injected faults) over this driver's
        #: lifetime; surfaced by the CLI, profiler, and benchmarks.
        self.recovery = RecoveryCounters()
        #: Merged :class:`~repro.profiling.counters.HaloCounters` of the
        #: last multi-process :meth:`run` (None until one completes).
        self.halo_counters = None
        self._ckpt_manager = None
        # Escalation fallbacks are built lazily (each carries its own
        # workspace) and only for rungs below the configured order.
        self._fallback_rhs_cache: dict[int, RHS] = {}
        if self.retry is not None:
            self._escalation_ladder = tuple(
                rung for rung in self.retry.escalation
                if ESCALATION_ORDERS[rung] < self.config.weno_order)
        else:
            self._escalation_ladder = ()

    # ------------------------------------------------------------------
    def _resolve_tuning(self) -> None:
        """Resolve the ``tuning`` knob into :attr:`tuning_plan`.

        Deferred imports: :mod:`repro.tuning` imports the RHS module,
        which sits below this one in the package graph.
        """
        spec = self.tuning
        if spec is None or spec == "off":
            return
        from repro.tuning import Autotuner, TuningCache, TuningPlan

        if isinstance(spec, TuningPlan):
            self.tuning_plan = spec
            return
        if isinstance(spec, dict):
            entry = dict(spec)
            entry.setdefault("source", "manual")
            self.tuning_plan = TuningPlan.from_dict(entry)
            return
        if spec == "auto":
            from repro.hardware.devices import get_device

            device = (get_device(self.tile_device)
                      if isinstance(self.tile_device, str)
                      else self.tile_device)
            self.tuner = Autotuner(cache=TuningCache(self.tuning_cache),
                                   device=device)
            self.tuning_plan = self.tuner.plan_for(
                self.layout, self.mixture, self.grid, self.bcs, self.config,
                self.q, threads=self.threads, sweep_layout=self.sweep_layout)
            return
        raise ConfigurationError(
            f"tuning must be 'off', 'auto', a TuningPlan, or a plan dict; "
            f"got {spec!r}")

    # ------------------------------------------------------------------
    def primitive(self) -> np.ndarray:
        """Current primitive field (fresh array)."""
        return cons_to_prim(self.layout, self.mixture, self.q)

    def conserved_totals(self) -> np.ndarray:
        """Volume-integrated conservative variables (for conservation tests)."""
        vol = self.grid.cell_volumes()
        q = to_host_array(self.q)  # D2H: diagnostics integrate on host
        return np.array([(q[v] * vol).sum() for v in range(self.layout.nvars)])

    def compute_dt(self, prim: np.ndarray | None = None) -> float:
        """CFL-limited (or fixed) step; ``prim`` avoids a re-conversion."""
        if self.fixed_dt is not None:
            return self.fixed_dt
        if prim is None:
            prim = self.primitive()
        return cfl_dt(self.layout, self.mixture, prim, self.grid, self.cfl)

    def step(self, dt: float | None = None, *,
             dt_limit: float | None = None) -> StepRecord:
        """Advance one time step; returns its record.

        Parameters
        ----------
        dt:
            Step size to use; computed from the CFL condition (or
            ``fixed_dt``) when omitted.  Passing a precomputed dt avoids
            a second wave-speed sweep when the caller already did one.
        dt_limit:
            Upper bound on the step (the driver clips the final step of
            ``run(t_end=...)`` with this so the run lands exactly on the
            horizon).

        With a :class:`~repro.solver.resilience.RetryPolicy` configured
        the step is guarded: the post-step state is validated and a
        failure rolls back and retries under the policy, raising
        :class:`~repro.solver.resilience.SimulationDivergedError` when
        every retry and escalation rung is exhausted (the pre-step
        state is left restored, so checkpoint-based recovery can take
        over).
        """
        if self.ranks > 1:
            raise ConfigurationError(
                "single-step marching is in-process only; with ranks > 1 "
                "use run(), which delegates the whole march to the cluster")
        ws = self.rhs.workspace
        prim0 = None
        if ws is not None:
            # One cons_to_prim serves both the dt computation and RK
            # stage one (their inputs are identical, so sharing is
            # bitwise neutral).
            with self.stopwatch.time("other"):
                prim0 = cons_to_prim(self.layout, self.mixture, self.q,
                                     out=ws.prim)
        if dt is None:
            dt = self.compute_dt(prim0)
        if dt_limit is not None and dt > dt_limit:
            dt = dt_limit
        if self.retry is not None:
            return self._guarded_step(dt, prim0)
        with WallTimer() as timer:
            self.q = ssp_rk_step(self.rhs, self.q, dt, self.rk_order,
                                 workspace=ws, prim0=prim0,
                                 executor=self.rhs.executor)
            if self.fault_injector is not None:
                self.recovery.faults_injected += int(self.fault_injector.apply(
                    self.q, step=self.step_count + 1, attempt=0))
        self.time += dt
        self.step_count += 1
        rec = StepRecord(self.step_count, self.time, dt, timer.elapsed)
        self.history.append(rec)
        if self.check_every and self.step_count % self.check_every == 0:
            self.validate_state()
        return rec

    # ------------------------------------------------------------------
    def _fallback_rhs(self, order: int) -> RHS:
        """Cached lower-order RHS for a scheme-escalation retry.

        Built on first use (so an untroubled run allocates nothing
        extra), serial and strided: an escalated step is a rare rescue
        where robustness, not throughput, is the point.
        """
        rhs = self._fallback_rhs_cache.get(order)
        if rhs is None:
            cfg = dataclasses.replace(self.config, weno_order=order)
            rhs = RHS(self.layout, self.mixture, self.grid, self.bcs, cfg,
                      stopwatch=self.stopwatch,
                      use_workspace=self.use_workspace,
                      threads=1, sweep_layout="strided",
                      backend=self.backend, dtype=self._dtype)
            self._fallback_rhs_cache[order] = rhs
        return rhs

    def _limited_faces_total(self) -> int:
        return self.rhs.limited_faces + sum(
            r.limited_faces for r in self._fallback_rhs_cache.values())

    def _guarded_step(self, dt: float, prim0: np.ndarray | None) -> StepRecord:
        """One step under the retry policy (see :meth:`step`)."""
        policy = self.retry
        ws = self.rhs.workspace
        xp = array_namespace(self.q)
        if ws is not None:
            # q may alias ws.rk_result (a failed RK step clobbers it),
            # so the guard snapshots into the workspace-owned rollback
            # buffer — no per-step allocation.
            xp.copyto(ws.rollback, self.q)
            snapshot = ws.rollback
        else:
            snapshot = xp.copy(self.q)
        ladder = self._escalation_ladder
        total_attempts = 1 + policy.max_retries + len(ladder)
        dts: list[float] = []
        schemes: list[str] = []
        diag = None
        with WallTimer() as timer:
            for attempt in range(total_attempts):
                if attempt <= policy.max_retries:
                    rhs = self.rhs
                    order = self.config.weno_order
                    dt_a = policy.dt_for_attempt(dt, attempt)
                else:
                    rung = ladder[attempt - policy.max_retries - 1]
                    order = ESCALATION_ORDERS[rung]
                    rhs = self._fallback_rhs(order)
                    dt_a = policy.dt_for_attempt(dt, policy.max_retries)
                ws_a = rhs.workspace
                if attempt == 0:
                    prim_a = prim0
                elif ws_a is not None:
                    # ws.prim was clobbered by the failed attempt's RK
                    # stages; recompute — bitwise identical to the
                    # value a fresh step would have computed.
                    with self.stopwatch.time("other"):
                        prim_a = cons_to_prim(self.layout, self.mixture,
                                              self.q, out=ws_a.prim)
                else:
                    prim_a = None
                dts.append(dt_a)
                schemes.append(_scheme_name(order))
                q_new = ssp_rk_step(rhs, self.q, dt_a, self.rk_order,
                                    workspace=ws_a, prim0=prim_a,
                                    executor=rhs.executor)
                if self.fault_injector is not None:
                    self.recovery.faults_injected += int(
                        self.fault_injector.apply(
                            q_new, step=self.step_count + 1, attempt=attempt))
                vprim = None
                if ws_a is not None:
                    vprim = cons_to_prim(self.layout, self.mixture, q_new,
                                         out=ws_a.prim)
                # D2H views: state checks are host-side diagnostics.
                diag = check_state(self.layout, self.mixture,
                                   to_host_array(q_new),
                                   prim=(None if vprim is None
                                         else to_host_array(vprim)))
                if diag is None:
                    self.q = q_new
                    break
                self.recovery.guard_failures += 1
                xp.copyto(self.q, snapshot)
                self.recovery.rollbacks += 1
                if attempt + 1 < total_attempts:
                    self.recovery.retries += 1
                    if attempt + 1 > policy.max_retries:
                        self.recovery.escalations += 1
                    elif attempt + 1 > policy.same_dt_retries:
                        self.recovery.dt_halvings += 1
            else:
                # Exhausted: the pre-step state is restored in self.q,
                # so a caller holding checkpoints can still recover.
                raise SimulationDivergedError(
                    step=self.step_count + 1, time=self.time,
                    dts=tuple(dts), schemes=tuple(schemes),
                    diagnostics=diag,
                    limited_faces=self._limited_faces_total())
        self.time += dts[-1]
        self.step_count += 1
        rec = StepRecord(self.step_count, self.time, dts[-1], timer.elapsed,
                         retries=len(dts) - 1)
        self.history.append(rec)
        if self.check_every and self.step_count % self.check_every == 0:
            self.validate_state()
        return rec

    # ------------------------------------------------------------------
    def run(self, *, t_end: float | None = None, n_steps: int | None = None,
            callback: Callable[["Simulation", StepRecord], None] | None = None) -> None:
        """March until ``t_end`` or for ``n_steps`` (whichever is given).

        The final step is clipped so the run lands exactly on ``t_end``.
        A horizon at or before the current time is a no-op; a negative
        one is a configuration error.  After each step (and its
        callback) the driver applies the ``validate_every`` and
        ``checkpoint_every`` cadences.
        """
        if (t_end is None) == (n_steps is None):
            raise ConfigurationError("specify exactly one of t_end or n_steps")
        if self.ranks > 1:
            if callback is not None:
                raise ConfigurationError(
                    "per-step callbacks are not supported with ranks > 1")
            if t_end is not None and t_end < 0.0:
                raise ConfigurationError(
                    f"t_end must be non-negative, got {t_end}")
            self._run_cluster(t_end=t_end, n_steps=n_steps)
            return
        if n_steps is not None:
            for _ in range(n_steps):
                rec = self.step()
                self._after_step(rec, callback)
            return
        assert t_end is not None
        if t_end < 0.0:
            raise ConfigurationError(
                f"t_end must be non-negative, got {t_end}")
        while self.time < t_end * (1.0 - 1e-12):
            rec = self.step(dt_limit=t_end - self.time)
            self._after_step(rec, callback)

    def _run_cluster(self, *, t_end: float | None,
                     n_steps: int | None) -> None:
        """Delegate a whole march to a multi-process cluster.

        Builds a balanced :class:`~repro.cluster.BlockDecomposition`
        over :attr:`ranks` processes and runs
        :class:`~repro.cluster.ProcessCluster` on the current state —
        bitwise identical to the serial march.  The workers are seeded
        with the driver's absolute time/step, so worker checkpoint
        headers and history records carry the same clock the driver
        reports.  The driver's state, clock, step history,
        limiter/sweep counters, and restart tally absorb the cluster's
        results, and the merged halo counters land in
        :attr:`halo_counters`.
        """
        from repro.cluster import BlockDecomposition, ProcessCluster

        if t_end is not None and self.time >= t_end * (1.0 - 1e-12):
            return  # horizon already reached: a no-op, as in-process
        periodic = tuple(lo is BC.PERIODIC for lo, _ in self.bcs.per_axis)
        decomp = BlockDecomposition.balanced(
            self.grid.shape, self.ranks, periodic=periodic)
        cluster = ProcessCluster(
            self.grid, self.layout, self.mixture, self.bcs, decomp,
            self.config, cfl=self.cfl, fixed_dt=self.fixed_dt,
            rk_order=self.rk_order, sweep_layout=self.sweep_layout,
            fusion=self.fusion,
            checkpoint_every=self.checkpoint_every,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_keep=self.checkpoint_keep,
            max_restarts=self.max_restarts, timeout=self.cluster_timeout)
        result = cluster.run(to_host_array(self.q), t_end=t_end,
                             n_steps=n_steps,
                             base_time=self.time, base_step=self.step_count)
        self.q = self.backend.from_host(result.q, dtype=self._dtype)
        self.time = result.time
        self.step_count = result.step_count
        for step, time, dt, wall in result.history:
            self.history.append(StepRecord(step, time, dt, wall))
        self.halo_counters = result.halo
        self.rhs.sweep_counters.merge(result.sweep)
        self.rhs.limited_faces += result.limited_faces
        self.recovery.restarts += result.restarts
        if self.validate_every or self.check_every:
            self.validate_state()

    def _after_step(self, rec: StepRecord,
                    callback: Callable | None) -> None:
        if callback is not None:
            callback(self, rec)
        if self.validate_every and self.step_count % self.validate_every == 0:
            self.validate_state()
        if self.checkpoint_every \
                and self.step_count % self.checkpoint_every == 0:
            self.checkpoint_now()

    # ------------------------------------------------------------------
    def validate_state(self) -> None:
        """Raise :class:`NumericsError` if the state became unphysical.

        The error names the check that failed, the first offending
        cell, and the primitive variable there (via
        :func:`repro.solver.resilience.check_state`).
        """
        diag = check_state(self.layout, self.mixture,
                           to_host_array(self.q))
        if diag is not None:
            raise NumericsError(
                f"unphysical state at step {self.step_count}: {diag}")

    # ------------------------------------------------------------------
    @property
    def checkpoint_manager(self):
        """Lazy :class:`~repro.io.checkpoint.CheckpointManager` over
        ``checkpoint_dir`` (requires the directory to be configured)."""
        if self._ckpt_manager is None:
            if self.checkpoint_dir is None:
                raise ConfigurationError(
                    "no checkpoint_dir configured on this Simulation")
            from repro.io.checkpoint import CheckpointManager

            self._ckpt_manager = CheckpointManager(
                self.checkpoint_dir, keep=self.checkpoint_keep)
        return self._ckpt_manager

    def checkpoint_now(self) -> Path:
        """Write one rotating durable checkpoint of the current state."""
        with WallTimer() as timer:
            path = self.checkpoint_manager.save(
                to_host_array(self.q), step=self.step_count, time=self.time)
        self.recovery.checkpoints_written += 1
        self.recovery.checkpoint_seconds += timer.elapsed
        return path

    def restore_latest(self) -> Path:
        """Restore from the newest *valid* checkpoint in ``checkpoint_dir``.

        Corrupt candidates (truncated, bit-flipped, wrong shape) are
        skipped with their rejection counted; raises
        :class:`~repro.common.CheckpointError` when no checkpoint
        survives verification.  Returns the path restored from.
        """
        mgr = self.checkpoint_manager
        verified0, rejected0 = mgr.verified, mgr.rejected
        events0 = len(mgr.events)
        try:
            path, header, q = mgr.load_latest(
                expect_shape=tuple(self.q.shape))
        finally:
            self.recovery.record_checkpoint_skips(
                mgr, verified0=verified0, rejected0=rejected0,
                events0=events0)
        self._apply_restart(header.step, header.time, q)
        return path

    # ------------------------------------------------------------------
    def save_checkpoint(self, path) -> int:
        """Write the current state as a restart snapshot; returns bytes."""
        from repro.io.binary import write_snapshot

        return write_snapshot(path, to_host_array(self.q),
                              step=self.step_count, time=self.time)

    def load_checkpoint(self, path) -> None:
        """Restore state, step count, and time from a snapshot.

        All accumulated statistics — step history, kernel stopwatch
        laps, and the RHS limiter counter — are reset so post-restart
        ``kernel_breakdown()``/``grind_time_ns()`` and limiter stats
        describe only the restarted run instead of mixing in
        pre-restart accounting.  (The :attr:`recovery` tally is *not*
        reset: restarts are exactly what it exists to count.)
        """
        from repro.io.binary import read_snapshot

        header, q = read_snapshot(path)
        if tuple(q.shape) != tuple(self.q.shape):
            raise ConfigurationError(
                f"checkpoint shape {q.shape} does not match case {self.q.shape}")
        self.recovery.checkpoints_verified += 1
        self._apply_restart(header.step, header.time, q)

    def _apply_restart(self, step: int, time: float, q: np.ndarray) -> None:
        self.q = self.backend.from_host(q, dtype=self._dtype)
        self.step_count = step
        self.time = time
        self.history.clear()
        self.stopwatch.laps.clear()
        self.rhs.limited_faces = 0
        self.recovery.restarts += 1

    # ------------------------------------------------------------------
    @classmethod
    def run_ensemble(cls, jobs, bcs, *, batch_width: int = 8,
                     config: RHSConfig | None = None, **kwargs):
        """March many same-shape cases through stacked batched drivers.

        ``jobs`` is a list of :class:`repro.ensemble.EnsembleJob` (or
        ``(case, t_end)`` tuples); compatible jobs are grouped into
        batches of at most ``batch_width`` and advanced by ONE stacked
        RHS per batch (see :mod:`repro.ensemble`), each case
        bit-for-bit identical to its standalone run.  Remaining
        keyword arguments are forwarded to
        :class:`~repro.ensemble.EnsembleRunner` (``cfl``,
        ``rk_order``, ``fixed_dt``, ``threads``, ``sweep_layout``,
        ``fusion``, ``tuning``, ...).  Returns the
        :class:`~repro.ensemble.EnsembleReport`.
        """
        from repro.ensemble import EnsembleJob, EnsembleRunner

        normalized = [job if isinstance(job, EnsembleJob)
                      else EnsembleJob(*job) for job in jobs]
        runner = EnsembleRunner(normalized, bcs, batch_width=batch_width,
                                config=config, **kwargs)
        return runner.run()

    # ------------------------------------------------------------------
    def grind_time_ns(self) -> float:
        """Grind time: ns per cell, per PDE, per RHS evaluation (paper's metric)."""
        if not self.history:
            raise NumericsError("no steps recorded yet")
        wall = sum(r.wall_seconds for r in self.history)
        rhs_evals = len(self.history) * len(SSP_SCHEMES[self.rk_order])
        work = self.grid.num_cells * self.layout.nvars * rhs_evals
        return wall / work * 1e9

    def kernel_breakdown(self) -> dict[str, float]:
        """Share of host wall time per kernel family ("weno", "riemann", ...)."""
        return self.stopwatch.fractions()
