"""Simulation driver: time marching, state checks, grind-time accounting.

The driver mirrors MFC's main loop: compute a CFL-limited step, advance
with SSP-RK3, periodically validate the state, and keep the conserved
totals and wall-time statistics the paper's performance figures are
built from.  Grind time follows the paper's definition —

    nanoseconds per grid cell, per PDE, per right-hand-side evaluation —

where an SSP-RK3 step performs three RHS evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bc.boundary import BoundarySet
from repro.common import ConfigurationError, NumericsError, Stopwatch, WallTimer
from repro.solver.case import Case
from repro.solver.rhs import RHS, RHSConfig
from repro.state.conversions import cons_to_prim
from repro.timestepping.cfl import cfl_dt
from repro.timestepping.ssp_rk import SSP_SCHEMES, ssp_rk_step


@dataclass(frozen=True)
class StepRecord:
    """Bookkeeping for one completed time step."""

    step: int
    time: float
    dt: float
    wall_seconds: float


@dataclass
class Simulation:
    """Time-marches a :class:`~repro.solver.case.Case`.

    Parameters
    ----------
    case:
        Grid, mixture, and initial condition.
    bcs:
        Physical boundary conditions.
    cfl:
        CFL number for adaptive stepping (ignored when ``fixed_dt`` set).
    rk_order:
        SSP-RK order (1, 2, or 3; MFC uses 3).
    check_every:
        Validate the state (finite, positive density) every this many
        steps; 0 disables checks.
    threads:
        Worker threads for the thread-tiled execution backend (the
        host realisation of ``acc parallel loop gang``).  ``1`` (the
        default) takes the serial path with zero executor overhead;
        values > 1 tile the RHS hot path and the RK axpy stages across
        a thread pool, bitwise identically to serial.  Requires
        ``use_workspace=True`` to take effect.
    tile_device:
        Optional :class:`~repro.hardware.DeviceSpec` (or catalog name)
        whose L2 capacity sizes the tiles; see
        :func:`repro.hardware.suggest_tile_count`.
    sweep_layout:
        Memory layout of the RHS direction sweeps: ``"strided"`` (the
        default), ``"transposed"`` (axis-contiguous sweep engine for
        the non-contiguous directions), or ``"auto"`` (per-direction
        heuristic; see :mod:`repro.solver.sweep`).  Bitwise identical
        either way.  Named ``layout`` in case files and on the CLI;
        the Python field avoids shadowing the state layout attribute.
    """

    case: Case
    bcs: BoundarySet
    config: RHSConfig = field(default_factory=RHSConfig)
    cfl: float = 0.5
    rk_order: int = 3
    fixed_dt: float | None = None
    check_every: int = 10
    stopwatch: Stopwatch = field(default_factory=Stopwatch)
    #: Preallocate all RHS/RK buffers once and reuse them every step
    #: (bitwise identical to the allocating path; see
    #: :mod:`repro.solver.workspace`).
    use_workspace: bool = True
    threads: int = 1
    tile_device: object | None = None
    sweep_layout: str = "strided"

    def __post_init__(self) -> None:
        if self.rk_order not in SSP_SCHEMES:
            raise ConfigurationError(f"unsupported RK order {self.rk_order}")
        self.layout = self.case.layout
        self.mixture = self.case.mixture
        self.grid = self.case.grid
        self.rhs = RHS(self.layout, self.mixture, self.grid, self.bcs,
                       self.config, stopwatch=self.stopwatch,
                       use_workspace=self.use_workspace,
                       threads=self.threads, tile_device=self.tile_device,
                       sweep_layout=self.sweep_layout)
        self.q = self.case.initial_conservative()
        self.time = 0.0
        self.step_count = 0
        self.history: list[StepRecord] = []

    # ------------------------------------------------------------------
    def primitive(self) -> np.ndarray:
        """Current primitive field (fresh array)."""
        return cons_to_prim(self.layout, self.mixture, self.q)

    def conserved_totals(self) -> np.ndarray:
        """Volume-integrated conservative variables (for conservation tests)."""
        vol = self.grid.cell_volumes()
        return np.array([(self.q[v] * vol).sum() for v in range(self.layout.nvars)])

    def compute_dt(self, prim: np.ndarray | None = None) -> float:
        """CFL-limited (or fixed) step; ``prim`` avoids a re-conversion."""
        if self.fixed_dt is not None:
            return self.fixed_dt
        if prim is None:
            prim = self.primitive()
        return cfl_dt(self.layout, self.mixture, prim, self.grid, self.cfl)

    def step(self, dt: float | None = None, *,
             dt_limit: float | None = None) -> StepRecord:
        """Advance one time step; returns its record.

        Parameters
        ----------
        dt:
            Step size to use; computed from the CFL condition (or
            ``fixed_dt``) when omitted.  Passing a precomputed dt avoids
            a second wave-speed sweep when the caller already did one.
        dt_limit:
            Upper bound on the step (the driver clips the final step of
            ``run(t_end=...)`` with this so the run lands exactly on the
            horizon).
        """
        ws = self.rhs.workspace
        prim0 = None
        if ws is not None:
            # One cons_to_prim serves both the dt computation and RK
            # stage one (their inputs are identical, so sharing is
            # bitwise neutral).
            with self.stopwatch.time("other"):
                prim0 = cons_to_prim(self.layout, self.mixture, self.q,
                                     out=ws.prim)
        if dt is None:
            dt = self.compute_dt(prim0)
        if dt_limit is not None and dt > dt_limit:
            dt = dt_limit
        with WallTimer() as timer:
            self.q = ssp_rk_step(self.rhs, self.q, dt, self.rk_order,
                                 workspace=ws, prim0=prim0,
                                 executor=self.rhs.executor)
        self.time += dt
        self.step_count += 1
        rec = StepRecord(self.step_count, self.time, dt, timer.elapsed)
        self.history.append(rec)
        if self.check_every and self.step_count % self.check_every == 0:
            self.validate_state()
        return rec

    def run(self, *, t_end: float | None = None, n_steps: int | None = None,
            callback: Callable[["Simulation", StepRecord], None] | None = None) -> None:
        """March until ``t_end`` or for ``n_steps`` (whichever is given).

        The final step is clipped so the run lands exactly on ``t_end``.
        A horizon at or before the current time is a no-op; a negative
        one is a configuration error.
        """
        if (t_end is None) == (n_steps is None):
            raise ConfigurationError("specify exactly one of t_end or n_steps")
        if n_steps is not None:
            for _ in range(n_steps):
                rec = self.step()
                if callback is not None:
                    callback(self, rec)
            return
        assert t_end is not None
        if t_end < 0.0:
            raise ConfigurationError(
                f"t_end must be non-negative, got {t_end}")
        while self.time < t_end * (1.0 - 1e-12):
            rec = self.step(dt_limit=t_end - self.time)
            if callback is not None:
                callback(self, rec)

    # ------------------------------------------------------------------
    def validate_state(self) -> None:
        """Raise :class:`NumericsError` if the state became unphysical."""
        if not np.all(np.isfinite(self.q)):
            raise NumericsError(f"non-finite state at step {self.step_count}")
        rho = self.q[self.layout.partial_densities].sum(axis=0)
        if not np.all(rho > 0.0):
            raise NumericsError(f"non-positive density at step {self.step_count}")

    # ------------------------------------------------------------------
    def save_checkpoint(self, path) -> int:
        """Write the current state as a restart snapshot; returns bytes."""
        from repro.io.binary import write_snapshot

        return write_snapshot(path, self.q, step=self.step_count, time=self.time)

    def load_checkpoint(self, path) -> None:
        """Restore state, step count, and time from a snapshot.

        All accumulated statistics — step history, kernel stopwatch
        laps, and the RHS limiter counter — are reset so post-restart
        ``kernel_breakdown()``/``grind_time_ns()`` and limiter stats
        describe only the restarted run instead of mixing in
        pre-restart accounting.
        """
        from repro.io.binary import read_snapshot

        header, q = read_snapshot(path)
        if q.shape != self.q.shape:
            raise ConfigurationError(
                f"checkpoint shape {q.shape} does not match case {self.q.shape}")
        self.q = q
        self.step_count = header.step
        self.time = header.time
        self.history.clear()
        self.stopwatch.laps.clear()
        self.rhs.limited_faces = 0

    # ------------------------------------------------------------------
    def grind_time_ns(self) -> float:
        """Grind time: ns per cell, per PDE, per RHS evaluation (paper's metric)."""
        if not self.history:
            raise NumericsError("no steps recorded yet")
        wall = sum(r.wall_seconds for r in self.history)
        rhs_evals = len(self.history) * len(SSP_SCHEMES[self.rk_order])
        work = self.grid.num_cells * self.layout.nvars * rhs_evals
        return wall / work * 1e9

    def kernel_breakdown(self) -> dict[str, float]:
        """Share of host wall time per kernel family ("weno", "riemann", ...)."""
        return self.stopwatch.fractions()
