"""Geometric source terms for axisymmetric coordinates (paper §III-A).

MFC supports Cartesian, axisymmetric, and cylindrical grids.  In
axisymmetric ``(x, r)`` coordinates the divergence picks up ``v/r``
terms; written as Cartesian-looking fluxes plus a source, the
five-equation system gains

.. math::

   S = -\\frac{v}{r}\\,
       \\bigl[\\alpha_i\\rho_i,\\ \\rho u,\\ \\rho v,\\ (\\rho E + p),\\
              \\alpha\\bigr]^T ,

and the nonconservative term uses the full cylindrical divergence
:math:`\\nabla\\cdot u = \\partial_x u + \\partial_r v + v/r`, so a
uniform state remains an exact steady state (tested).
"""

from __future__ import annotations

import numpy as np

from repro.common import ConfigurationError
from repro.grid.cartesian import StructuredGrid
from repro.state.layout import StateLayout

GEOMETRIES = ("cartesian", "axisymmetric")


def validate_geometry(geometry: str, layout: StateLayout,
                      grid: StructuredGrid) -> None:
    """Check a geometry choice against the layout and grid."""
    if geometry not in GEOMETRIES:
        raise ConfigurationError(
            f"geometry must be one of {GEOMETRIES}, got {geometry!r}")
    if geometry == "axisymmetric":
        if layout.ndim != 2:
            raise ConfigurationError("axisymmetric runs need a 2D (x, r) grid")
        if np.any(grid.centers(1) <= 0.0):
            raise ConfigurationError(
                "axisymmetric grids need strictly positive radial centres "
                "(place the first face at r = 0 or above)")


def apply_axisymmetric_terms(layout: StateLayout, prim: np.ndarray,
                             cons: np.ndarray, radius: np.ndarray,
                             dqdt: np.ndarray, divu: np.ndarray) -> None:
    """Add the axisymmetric geometric terms to ``dqdt`` and ``divu`` in place.

    Parameters
    ----------
    prim / cons:
        Primitive and conservative fields ``(nvars, nx, nr)``.
    radius:
        Radial cell-centre coordinates broadcastable to the grid
        (shape ``(1, nr)``).
    dqdt:
        Right-hand side being assembled; receives the ``-v/r``-weighted
        advective source for every equation.
    divu:
        Velocity-divergence accumulator for the nonconservative
        volume-fraction term; gains the ``v/r`` contribution so it
        represents the true cylindrical divergence.

    With uniform flow the flux-difference terms vanish and the sources
    here are the only contributions; for zero radial velocity they are
    identically zero, so quiescent and purely axial uniform states are
    exact steady states of the discretisation.
    """
    v_over_r = prim[layout.momentum_component(1)] / radius

    dqdt[layout.partial_densities] -= prim[layout.partial_densities] * v_over_r
    dqdt[layout.momentum] -= cons[layout.momentum] * v_over_r
    dqdt[layout.energy] -= (cons[layout.energy] + prim[layout.pressure]) * v_over_r
    dqdt[layout.advected] -= prim[layout.advected] * v_over_r
    divu += v_over_r
