"""Positivity-preserving fallback for reconstructed face states.

High-order WENO reconstruction of primitives can overshoot near extreme
interfaces (a water-air face has a ~1000:1 density jump), producing
negative partial densities or pressures below the mixture's
:math:`-\\pi_{\\infty,m}` — states the EOS cannot evaluate.  Production
multiphase solvers (MFC included) guard against this by locally
reverting to first-order (donor-cell) face values wherever the
high-order state is unphysical; the scheme loses an order at those few
faces and keeps its stability everywhere else.
"""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.eos.mixture import Mixture
from repro.state.conversions import full_alphas
from repro.state.layout import StateLayout

#: Safety margin: a face pressure must exceed -pi_m by this fraction of
#: the mixture stiffness (plus a tiny absolute floor for ideal gases).
PRESSURE_MARGIN = 1e-6


def _unphysical(layout: StateLayout, mixture: Mixture, prim: np.ndarray) -> np.ndarray:
    """Boolean mask (per face) where the state cannot be evaluated."""
    xp = array_namespace(prim)
    bad = (prim[layout.partial_densities] <= 0.0).any(axis=0)
    alphas = full_alphas(layout, prim[layout.advected])
    Gm, Pm = mixture.gamma_pi(alphas)
    pi_m = Pm / (Gm + 1.0)
    floor = -pi_m + PRESSURE_MARGIN * (pi_m + 1.0)
    bad |= prim[layout.pressure] <= floor
    bad |= ~xp.isfinite(prim).all(axis=0)
    return bad


def limit_face_states(layout: StateLayout, mixture: Mixture, padded: np.ndarray,
                      v_l: np.ndarray, v_r: np.ndarray, axis: int, ng: int) -> int:
    """Replace unphysical face states with donor-cell values, in place.

    ``padded`` is the per-axis ghost-padded primitive field the
    reconstruction ran on; ``v_l``/``v_r`` are its left/right face
    states along spatial ``axis`` (variable axis 0).  Returns the number
    of face states that were limited (for diagnostics).
    """
    ax = axis + 1
    nf = v_l.shape[ax]

    def faces(arr, start):
        idx = [slice(None)] * arr.ndim
        idx[ax] = slice(start, start + nf)
        return arr[tuple(idx)]

    limited = 0
    for v, offset in ((v_l, ng - 1), (v_r, ng)):
        bad = _unphysical(layout, mixture, v)
        if bool(bad.any()):
            donor = faces(padded, offset)
            v[:, bad] = donor[:, bad]
            limited += int(bad.sum())
    return limited
