"""Seeded corruption of files on disk.

The checkpoint layer's promise is that *any* single-file corruption —
a write cut short by a dying node, a flipped bit on a worn SSD — is
detected by CRC32 and survived by falling back to the previous valid
checkpoint.  These helpers manufacture exactly those corruptions,
deterministically, so the promise is testable.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common import ConfigurationError


def truncate_file(path: str | Path, *, keep_fraction: float = 0.5) -> int:
    """Chop a file to ``keep_fraction`` of its size (a torn write).

    Returns the number of bytes removed.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ConfigurationError(
            f"keep_fraction must lie in [0, 1), got {keep_fraction}")
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with path.open("rb+") as fh:
        fh.truncate(keep)
    return size - keep


def bitflip_file(path: str | Path, *, seed: int, nflips: int = 1,
                 skip_bytes: int = 0,
                 limit_bytes: int | None = None) -> list[tuple[int, int]]:
    """Flip ``nflips`` random bits of a file (a silent media error).

    The victim (byte offset, bit) pairs derive only from ``seed`` and
    the file size, so the same seed corrupts the same bits.
    ``skip_bytes`` protects a prefix (e.g. flip only payload bytes, or
    only header bytes, by slicing the offset range); ``limit_bytes``
    caps how far past ``skip_bytes`` a flip may land — together they
    aim the corruption at one region, e.g. a single ledger record.
    Returns the flipped ``(offset, bit)`` pairs.
    """
    if nflips < 1:
        raise ConfigurationError(f"nflips must be >= 1, got {nflips}")
    if limit_bytes is not None and limit_bytes < 1:
        raise ConfigurationError(
            f"limit_bytes must be >= 1, got {limit_bytes}")
    path = Path(path)
    size = path.stat().st_size
    if skip_bytes >= size:
        raise ConfigurationError(
            f"skip_bytes {skip_bytes} >= file size {size}")
    end = size if limit_bytes is None else min(size, skip_bytes + limit_bytes)
    rng = np.random.default_rng(seed)
    flips = []
    with path.open("rb+") as fh:
        for _ in range(nflips):
            offset = int(rng.integers(skip_bytes, end))
            bit = int(rng.integers(8))
            fh.seek(offset)
            byte = fh.read(1)[0]
            fh.seek(offset)
            fh.write(bytes([byte ^ (1 << bit)]))
            flips.append((offset, bit))
    return flips
