"""Seeded corruption of solver-state cells.

A :class:`CellFaultPlan` is the driver-side half of the fault loop: the
:class:`~repro.solver.simulation.Simulation` calls ``apply`` on every
candidate post-step state, and the plan decides — purely from its seed,
the step number, and the retry attempt — whether and where to strike.

Determinism contract
--------------------
* The victim cells and values derive from ``np.random.default_rng``
  seeded by ``(seed, step)`` only, so the same plan corrupts the same
  cells whether the RHS ran serial or threaded, strided or transposed.
* A *transient* fault (``attempts=1``, the default) strikes only the
  first attempt of its step; the guarded driver's same-dt retry then
  recomputes the step cleanly and the recovered trajectory is bitwise
  identical to a fault-free run.
* ``attempts=k`` makes the fault *persistent* for the first ``k``
  attempts — the way to force dt backoff and scheme escalation in
  tests.  ``attempts=None`` never relents (drives the step to
  :class:`~repro.solver.resilience.SimulationDivergedError`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import ConfigurationError

#: Supported corruption modes -> the value written into the victim cell.
FAULT_MODES = ("nan", "negative_density", "inf")


@dataclass(frozen=True)
class CellFaultPlan:
    """Corrupt ``ncells`` state cells at step ``step`` (1-based).

    Parameters
    ----------
    step:
        The (1-based) time step whose post-step state is corrupted.
    seed:
        Seed for the victim-cell draw; same seed ⇒ same fault.
    ncells:
        Number of distinct cells struck.
    mode:
        ``"nan"`` writes NaN into a random variable of each victim,
        ``"negative_density"`` negates-and-offsets the first partial
        density, ``"inf"`` writes +inf into a random variable.
    attempts:
        How many retry attempts of the step the fault persists for
        (``1`` = transient, ``None`` = forever).
    """

    step: int
    seed: int
    ncells: int = 1
    mode: str = "nan"
    attempts: int | None = 1

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ConfigurationError(f"fault step must be >= 1, got {self.step}")
        if self.ncells < 1:
            raise ConfigurationError(f"ncells must be >= 1, got {self.ncells}")
        if self.mode not in FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r}; choose from {FAULT_MODES}")
        if self.attempts is not None and self.attempts < 1:
            raise ConfigurationError(
                f"attempts must be >= 1 or None, got {self.attempts}")

    # ------------------------------------------------------------------
    def targets(self, shape: tuple[int, ...]) -> list[tuple[int, ...]]:
        """The ``(var, *cell)`` indices this plan strikes in a ``shape`` field.

        Pure function of ``(seed, step, shape)`` — reused by every
        attempt, by tests, and by post-mortem tooling.
        """
        nvars = shape[0]
        spatial = shape[1:]
        ncells_total = int(np.prod(spatial))
        rng = np.random.default_rng((self.seed, self.step))
        flat = rng.choice(ncells_total, size=min(self.ncells, ncells_total),
                          replace=False)
        out = []
        for f in flat:
            cell = np.unravel_index(int(f), spatial)
            if self.mode == "negative_density":
                var = 0
            else:  # "nan" / "inf" strike a random variable
                var = int(rng.integers(nvars))
            out.append((var, *(int(c) for c in cell)))
        return out

    def apply(self, q: np.ndarray, *, step: int, attempt: int = 0) -> int:
        """Corrupt ``q`` in place when ``(step, attempt)`` is armed.

        Returns the number of cells struck (0 when the plan does not
        fire), matching the ``Simulation.fault_injector`` protocol.
        """
        if step != self.step:
            return 0
        if self.attempts is not None and attempt >= self.attempts:
            return 0
        struck = 0
        for idx in self.targets(q.shape):
            if self.mode == "nan":
                q[idx] = np.nan
            elif self.mode == "negative_density":
                q[idx] = -abs(q[idx]) - 1.0
            else:
                q[idx] = np.inf
            struck += 1
        return struck
