"""Deterministic, seeded fault injection for resilience testing.

Production campaigns at the paper's scale (65,536 devices, multi-day
walls) meet soft errors, dying nodes, and half-written files as a
matter of course.  You cannot wait for a cosmic ray to test the
recovery machinery, so this package *manufactures* the faults — always
from an explicit seed, so every corruption is reproducible bit for bit:

* :class:`~repro.faults.inject.CellFaultPlan` — corrupt solver-state
  cells (NaN / negative density / infinity) at a chosen step, plugging
  into ``Simulation(fault_injector=...)``.  Faults are applied to the
  driver-level, standard-layout state, so the *same seed produces the
  same fault* regardless of sweep layout or thread count.
* :mod:`repro.faults.files` — truncate or bit-flip checkpoint files to
  exercise CRC detection and fallback.
* :class:`~repro.faults.ranks.RankFailurePlan` — seeded exponential
  (MTBF-driven) rank-failure timelines for the cluster model.
"""

from repro.faults.inject import FAULT_MODES, CellFaultPlan
from repro.faults.files import bitflip_file, truncate_file
from repro.faults.ranks import RankFailurePlan
from repro.faults.chaos import (
    EnsembleChaosPlan,
    corrupt_ledger_record,
    corrupt_newest_checkpoint,
)

__all__ = [
    "CellFaultPlan",
    "FAULT_MODES",
    "truncate_file",
    "bitflip_file",
    "RankFailurePlan",
    "EnsembleChaosPlan",
    "corrupt_ledger_record",
    "corrupt_newest_checkpoint",
]
