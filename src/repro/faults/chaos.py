"""Seeded chaos schedules for the durable ensemble service.

An :class:`EnsembleChaosPlan` bundles the fault kinds a long ensemble
campaign actually meets — a worker SIGKILL'd mid-batch, a checkpoint or
ledger record silently corrupted on disk, one case whose state keeps
diverging (a *poison job*) — into a single deterministic schedule that
the chaos suite replays against :class:`repro.ensemble.EnsembleService`.
Everything derives from explicit seeds and step numbers, so a failing
chaos run reproduces bit for bit.

The on-disk corruptions reuse :func:`repro.faults.files.truncate_file`
and :func:`repro.faults.files.bitflip_file`; the in-state poison reuses
:class:`repro.faults.inject.CellFaultPlan` with ``attempts=None`` (never
relents, so every retry of the poison job re-diverges and the service's
quarantine logic — not luck — must end it).
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from pathlib import Path

from repro.common import ConfigurationError
from repro.faults.files import bitflip_file, truncate_file
from repro.faults.inject import CellFaultPlan

__all__ = [
    "EnsembleChaosPlan",
    "corrupt_ledger_record",
    "corrupt_newest_checkpoint",
]


def corrupt_ledger_record(ledger_path: str | Path, *, index: int,
                          seed: int) -> list[tuple[int, int]]:
    """Flip one bit inside the ``index``-th line of a ledger file.

    Locates the line's byte extent and aims
    :func:`~repro.faults.files.bitflip_file` at it with
    ``skip_bytes``/``limit_bytes``, so exactly one record loses its
    CRC — the replay must skip it (or drop it as tail) and keep every
    other record.
    """
    path = Path(ledger_path)
    raw = path.read_bytes()
    offset = 0
    for i, line in enumerate(raw.split(b"\n")):
        if i == index:
            if not line:
                raise ConfigurationError(
                    f"ledger line {index} is empty; nothing to corrupt")
            return bitflip_file(path, seed=seed, skip_bytes=offset,
                                limit_bytes=len(line))
        offset += len(line) + 1
    raise ConfigurationError(
        f"ledger {path} has no line {index}")


def corrupt_newest_checkpoint(directory: str | Path, *, prefix: str,
                              seed: int, mode: str = "bitflip") -> Path:
    """Corrupt the newest checkpoint written under ``prefix``.

    ``mode="bitflip"`` flips one payload bit (silent media error);
    ``mode="truncate"`` chops the file in half (torn write).  Returns
    the victim path; raises if no checkpoint exists to corrupt.
    """
    from repro.io.checkpoint import CheckpointManager

    mgr = CheckpointManager(directory, prefix=prefix)
    candidates = mgr.checkpoints()
    if not candidates:
        raise ConfigurationError(
            f"no {prefix!r} checkpoints under {directory} to corrupt")
    victim = candidates[-1]
    if mode == "bitflip":
        bitflip_file(victim, seed=seed)
    elif mode == "truncate":
        truncate_file(victim)
    else:
        raise ConfigurationError(
            f"mode must be 'bitflip' or 'truncate', got {mode!r}")
    return victim


@dataclass(frozen=True)
class EnsembleChaosPlan:
    """One deterministic fault schedule for a service run.

    Parameters
    ----------
    seed:
        Master seed; the poison fault and any corruption helpers the
        test invokes between invocations derive from it.
    kill_step:
        SIGKILL the batch worker after this many *stacked* steps of
        the batch containing ``kill_job`` — but only on attempt 0, so
        the retry (like a real node replacement) runs clean.
    kill_job:
        Original job index whose batch the kill targets (``None``
        kills the first batch that reaches ``kill_step``).
    poison_job:
        Original job index that receives a never-relenting NaN fault
        (``attempts=None``) at ``poison_step`` — deterministically
        diverges on every attempt until quarantined.
    poison_step:
        The (1-based, absolute per-case) step the poison fires on.
    """

    seed: int = 0
    kill_step: int | None = None
    kill_job: int | None = None
    poison_job: int | None = None
    poison_step: int = 2

    def fault_plans(self, job_indices: list[int]) -> dict:
        """Per-case fault plans for a batch holding ``job_indices``."""
        plans = {}
        if self.poison_job is not None and self.poison_job in job_indices:
            plans[self.poison_job] = CellFaultPlan(
                step=self.poison_step, seed=self.seed, mode="nan",
                attempts=None)
        return plans

    def arms_kill(self, job_indices: list[int], attempt: int) -> bool:
        """Whether this batch (on this attempt) carries the kill switch."""
        if self.kill_step is None or attempt != 0:
            return False
        return self.kill_job is None or self.kill_job in job_indices

    def make_kill_callback(self, job_indices: list[int], attempt: int):
        """A ``step_callback`` that SIGKILLs the worker at the kill step.

        Returns ``None`` when this batch is not armed.  The kill is
        ``os.kill(os.getpid(), SIGKILL)`` — uncatchable, exactly what a
        dying node delivers — so it must only ever run inside a
        supervised child process.
        """
        if not self.arms_kill(job_indices, attempt):
            return None

        def _kill(sim) -> None:
            if sim.step_count >= self.kill_step:
                os.kill(os.getpid(), signal.SIGKILL)

        return _kill
