"""Seeded rank-failure timelines for the simulated cluster.

Leadership machines fail by the node: each of the paper's multi-day
Frontier campaigns statistically *will* lose nodes, which is why the
cluster model prices checkpoint/restart (see
:mod:`repro.cluster.resilience`).  A :class:`RankFailurePlan` draws the
failure times themselves — independent exponential (memoryless) clocks
per rank, from one seed — so a simulated run can be killed and
restarted at reproducible instants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import ConfigurationError


@dataclass(frozen=True)
class RankFailurePlan:
    """Deterministic exponential failure draws for ``nranks`` ranks.

    ``mtbf_hours`` is the *per-rank* mean time between failures; the
    aggregate failure rate is ``nranks / mtbf_hours`` (system MTBF
    shrinks linearly with the machine, the scaling-killer the Daly
    interval exists to manage).
    """

    nranks: int
    mtbf_hours: float
    seed: int

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ConfigurationError(f"nranks must be >= 1, got {self.nranks}")
        if self.mtbf_hours <= 0.0:
            raise ConfigurationError(
                f"mtbf_hours must be positive, got {self.mtbf_hours}")

    def failure_times(self, horizon_hours: float) -> list[tuple[float, int]]:
        """All ``(time_hours, rank)`` failures before ``horizon_hours``.

        Sorted by time; pure function of ``(seed, nranks, mtbf_hours,
        horizon)``.  Each rank's clock restarts after a failure (the
        node is rebooted or swapped, not removed).
        """
        if horizon_hours < 0.0:
            raise ConfigurationError(
                f"horizon_hours must be >= 0, got {horizon_hours}")
        rng = np.random.default_rng(self.seed)
        events: list[tuple[float, int]] = []
        for rank in range(self.nranks):
            t = rng.exponential(self.mtbf_hours)
            while t < horizon_hours:
                events.append((float(t), rank))
                t += rng.exponential(self.mtbf_hours)
        events.sort()
        return events

    def expected_failures(self, horizon_hours: float) -> float:
        """Analytic expectation matching :meth:`failure_times`."""
        return self.nranks * horizon_hours / self.mtbf_hours
