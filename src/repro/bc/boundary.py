"""Ghost-cell boundary conditions for padded state fields.

All conditions operate in place on a field of shape
``(nvars, *padded_spatial)`` — either conservative or primitive, since
the three supported conditions act identically on both layouts:

* ``PERIODIC`` — wrap interior cells around.
* ``REFLECTIVE`` — mirror the interior and negate the face-normal
  momentum/velocity component (slip wall).
* ``EXTRAPOLATION`` — zero-gradient copy of the first interior cell
  (MFC's non-reflecting outflow workhorse).

In distributed runs, faces interior to the global domain are instead
filled by the halo exchange (:mod:`repro.cluster.halo`); these routines
handle only true physical boundaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.backend import array_namespace
from repro.common import ConfigurationError
from repro.state.layout import StateLayout


class BC(enum.Enum):
    """Physical boundary-condition kinds."""

    PERIODIC = "periodic"
    REFLECTIVE = "reflective"
    EXTRAPOLATION = "extrapolation"


@dataclass(frozen=True)
class BoundarySet:
    """Boundary conditions for every axis: ``per_axis[d] = (lo, hi)``.

    Periodicity must match on both sides of an axis, as in MFC.
    """

    per_axis: tuple[tuple[BC, BC], ...]

    def __post_init__(self) -> None:
        for d, (lo, hi) in enumerate(self.per_axis):
            if (lo is BC.PERIODIC) != (hi is BC.PERIODIC):
                raise ConfigurationError(
                    f"axis {d}: periodic BCs must be paired, got {lo} / {hi}")

    @classmethod
    def all_periodic(cls, ndim: int) -> "BoundarySet":
        return cls(tuple((BC.PERIODIC, BC.PERIODIC) for _ in range(ndim)))

    @classmethod
    def all_extrapolation(cls, ndim: int) -> "BoundarySet":
        return cls(tuple((BC.EXTRAPOLATION, BC.EXTRAPOLATION) for _ in range(ndim)))

    @classmethod
    def all_reflective(cls, ndim: int) -> "BoundarySet":
        return cls(tuple((BC.REFLECTIVE, BC.REFLECTIVE) for _ in range(ndim)))

    def ndim(self) -> int:
        return len(self.per_axis)


def pad_with_ghosts(field: np.ndarray, ng: int) -> np.ndarray:
    """Allocate a padded copy of ``field`` with ``ng`` ghost cells per spatial side.

    ``field`` has shape ``(nvars, *spatial)``; ghost contents are
    uninitialised until :func:`fill_ghosts` runs.
    """
    xp = array_namespace(field)
    nvars, *spatial = field.shape
    padded = xp.empty((nvars, *[s + 2 * ng for s in spatial]), dtype=field.dtype)
    interior = (slice(None),) + tuple(slice(ng, ng + s) for s in spatial)
    padded[interior] = field
    return padded


def pad_axis(field: np.ndarray, axis: int, ng: int,
             out: np.ndarray | None = None) -> np.ndarray:
    """Pad only spatial ``axis`` of ``(nvars, *spatial)`` with ``ng`` ghosts per side.

    The dimension-split RHS reconstructs one direction at a time, so it
    only ever needs ghosts along that direction; per-axis padding keeps
    the temporary ``(1 + 2*ng/n)`` times the field instead of cubing it.
    When ``out`` is given (a preallocated workspace buffer of the padded
    shape) the interior is written into it and no allocation happens.
    """
    shape = list(field.shape)
    shape[axis + 1] += 2 * ng
    if out is None:
        padded = array_namespace(field).empty(shape, dtype=field.dtype)
    else:
        if list(out.shape) != shape:
            raise ConfigurationError(
                f"pad_axis out buffer has shape {out.shape}, expected {tuple(shape)}")
        padded = out
    interior = [slice(None)] * field.ndim
    interior[axis + 1] = slice(ng, ng + field.shape[axis + 1])
    padded[tuple(interior)] = field
    return padded


def fill_axis_ghosts(padded: np.ndarray, layout: StateLayout, axis: int, ng: int,
                     lo: BC, hi: BC, *, normal_direction: int | None = None) -> None:
    """Fill the ghost cells of one spatial ``axis`` of a per-axis padded field.

    ``normal_direction`` names the *physical* direction the ghosts face
    (the momentum component a reflective wall negates).  It defaults to
    ``axis`` — correct in the standard layout, where spatial axes sit in
    physical order.  In an axis-contiguous transposed layout the sweep
    direction lives on the trailing array axis instead, so the sweep
    engine passes the physical direction explicitly; the filled values
    are bitwise the ones the standard layout produces.
    """
    _fill_axis(padded, layout, axis, ng, lo, hi,
               normal_direction=normal_direction)


def _axis_slices(padded: np.ndarray, axis: int, ng: int):
    """Spatial axis index inside the padded array (axis 0 is variables)."""
    return axis + 1, padded.shape[axis + 1] - 2 * ng


def fill_ghosts(padded: np.ndarray, layout: StateLayout, bcs: BoundarySet, ng: int) -> None:
    """Fill all ghost regions of ``padded`` in place, axis by axis.

    Axes are processed in order, so corner ghosts receive the
    composition of the per-axis conditions (sufficient for the
    dimension-split reconstruction used here and in MFC).
    """
    if bcs.ndim() != layout.ndim:
        raise ConfigurationError(
            f"boundary set has {bcs.ndim()} axes, layout has {layout.ndim}")
    for axis in range(layout.ndim):
        lo, hi = bcs.per_axis[axis]
        _fill_axis(padded, layout, axis, ng, lo, hi)


def _fill_axis(padded: np.ndarray, layout: StateLayout, axis: int, ng: int,
               lo: BC, hi: BC, *, normal_direction: int | None = None) -> None:
    ax, n = _axis_slices(padded, axis, ng)
    normal = axis if normal_direction is None else normal_direction
    if n < ng:
        raise ConfigurationError(
            f"axis {axis} has only {n} interior cells for {ng} ghost cells")

    def sl(start: int, stop: int):
        idx = [slice(None)] * padded.ndim
        idx[ax] = slice(start, stop)
        return tuple(idx)

    def sl_rev(start: int, stop: int):
        idx = [slice(None)] * padded.ndim
        idx[ax] = slice(stop - 1, start - 1 if start > 0 else None, -1)
        return tuple(idx)

    # Low side ghosts: indices [0, ng); interior starts at ng.
    if lo is BC.PERIODIC:
        padded[sl(0, ng)] = padded[sl(n, n + ng)]
    elif lo is BC.EXTRAPOLATION:
        padded[sl(0, ng)] = padded[sl(ng, ng + 1)]
    else:  # REFLECTIVE: mirror and negate normal component
        padded[sl(0, ng)] = padded[sl_rev(ng, ng + ng)]
        comp = layout.momentum_component(normal)
        padded[(comp,) + sl(0, ng)[1:]] *= -1.0

    # High side ghosts: indices [ng + n, ng + n + ng).
    if hi is BC.PERIODIC:
        padded[sl(ng + n, ng + n + ng)] = padded[sl(ng, ng + ng)]
    elif hi is BC.EXTRAPOLATION:
        padded[sl(ng + n, ng + n + ng)] = padded[sl(ng + n - 1, ng + n)]
    else:
        padded[sl(ng + n, ng + n + ng)] = padded[sl_rev(n, ng + n)]
        comp = layout.momentum_component(normal)
        padded[(comp,) + sl(ng + n, ng + n + ng)[1:]] *= -1.0
