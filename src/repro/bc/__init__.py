"""Ghost-cell boundary conditions."""

from repro.bc.boundary import (
    BC,
    BoundarySet,
    fill_axis_ghosts,
    fill_ghosts,
    pad_axis,
    pad_with_ghosts,
)

__all__ = [
    "BC",
    "BoundarySet",
    "fill_axis_ghosts",
    "fill_ghosts",
    "pad_axis",
    "pad_with_ghosts",
]
