"""Snapshot time series with a JSON manifest.

MFC writes restart/visualization files every O(10^3) steps (§III-A);
a run therefore produces a *series* of snapshots.  :class:`SeriesWriter`
manages the naming, interval logic, and a manifest (``series.json``)
recording step/time/file for each member, so post-processing tools can
iterate a run without globbing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common import ConfigurationError
from repro.io.binary import read_snapshot, write_snapshot

MANIFEST_NAME = "series.json"


@dataclass
class SeriesEntry:
    step: int
    time: float
    filename: str


class SeriesWriter:
    """Writes snapshots every ``interval`` steps plus a manifest."""

    def __init__(self, directory: str | Path, *, interval: int = 100,
                 prefix: str = "snap"):
        if interval < 1:
            raise ConfigurationError("interval must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.interval = interval
        self.prefix = prefix
        self.entries: list[SeriesEntry] = []

    def maybe_write(self, q: np.ndarray, *, step: int, time: float) -> bool:
        """Write if ``step`` is on the interval (or step 0); returns True if written."""
        if step % self.interval != 0:
            return False
        self.write(q, step=step, time=time)
        return True

    def write(self, q: np.ndarray, *, step: int, time: float) -> str:
        name = f"{self.prefix}_{step:08d}.bin"
        write_snapshot(self.directory / name, q, step=step, time=time)
        self.entries.append(SeriesEntry(step=step, time=time, filename=name))
        self._write_manifest()
        return name

    def _write_manifest(self) -> None:
        manifest = {
            "prefix": self.prefix,
            "interval": self.interval,
            "snapshots": [vars(e) for e in self.entries],
        }
        with (self.directory / MANIFEST_NAME).open("w") as fh:
            json.dump(manifest, fh, indent=2)

    def callback(self, sim, record) -> None:
        """`Simulation.run` callback: snapshot on the configured interval."""
        self.maybe_write(sim.q, step=record.step, time=record.time)


class SeriesReader:
    """Iterates the snapshots a :class:`SeriesWriter` produced."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ConfigurationError(f"no {MANIFEST_NAME} in {self.directory}")
        with manifest_path.open() as fh:
            manifest = json.load(fh)
        self.entries = [SeriesEntry(**e) for e in manifest["snapshots"]]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        for entry in self.entries:
            header, q = read_snapshot(self.directory / entry.filename)
            yield header, q

    def times(self) -> list[float]:
        return [e.time for e in self.entries]

    def load(self, index: int):
        entry = self.entries[index]
        return read_snapshot(self.directory / entry.filename)
