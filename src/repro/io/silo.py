"""Post-processing: snapshot -> visualization database (SILO analog).

MFC's host-side post-processor reads the MPI-IO binary files and writes
SILO databases for ParaView/VisIt (paper §III-A).  Here the portable
database is a compressed ``.npz`` holding the mesh coordinates and one
named array per primitive variable plus derived fields (mixture density,
velocity magnitude, and in 2D the z-vorticity) — everything a plotting
script needs, with self-describing keys.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common import ConfigurationError
from repro.eos.mixture import Mixture
from repro.grid.cartesian import StructuredGrid
from repro.io.binary import read_snapshot
from repro.state.conversions import cons_to_prim
from repro.state.layout import StateLayout


def export_silo(snapshot_path: str | Path, out_path: str | Path,
                grid: StructuredGrid, mixture: Mixture) -> dict[str, np.ndarray]:
    """Convert a binary snapshot into a visualization database.

    Returns the dictionary that was written (handy for testing and for
    immediate plotting without re-reading).
    """
    header, q = read_snapshot(snapshot_path)
    if q.shape[1:] != grid.shape:
        raise ConfigurationError(
            f"snapshot grid {q.shape[1:]} does not match grid {grid.shape}")
    layout = StateLayout(ncomp=mixture.ncomp, ndim=grid.ndim)
    if layout.nvars != header.nvars:
        raise ConfigurationError(
            f"snapshot has {header.nvars} variables, layout expects {layout.nvars}")
    prim = cons_to_prim(layout, mixture, q)

    db: dict[str, np.ndarray] = {
        "step": np.array(header.step),
        "time": np.array(header.time),
    }
    for d in range(grid.ndim):
        db[f"coord_{'xyz'[d]}"] = grid.centers(d)
    for i in range(layout.ncomp):
        db[f"alpha_rho_{i}"] = prim[i]
    for d in range(grid.ndim):
        db[f"velocity_{'xyz'[d]}"] = prim[layout.momentum_component(d)]
    db["pressure"] = prim[layout.pressure]
    for i in range(layout.n_advected):
        db[f"alpha_{i}"] = prim[layout.advected][i]

    # Derived fields the paper's renders use.
    rho = prim[layout.partial_densities].sum(axis=0)
    db["density"] = rho
    vel = prim[layout.velocity]
    db["speed"] = np.sqrt((vel ** 2).sum(axis=0))
    if grid.ndim == 2:
        dx = np.gradient(grid.centers(0))
        dy = np.gradient(grid.centers(1))
        dvdx = np.gradient(vel[1], axis=0) / dx[:, None]
        dudy = np.gradient(vel[0], axis=1) / dy[None, :]
        db["vorticity_z"] = dvdx - dudy

    np.savez_compressed(out_path, **db)
    return db


def load_silo(path: str | Path) -> dict[str, np.ndarray]:
    """Load a database written by :func:`export_silo`."""
    with np.load(Path(path).with_suffix(".npz") if not str(path).endswith(".npz")
                 else path) as data:
        return {k: data[k] for k in data.files}
