"""JSON case files — the analog of MFC's input decks.

MFC cases are Python dictionaries naming the grid, the fluids'
stiffened-gas parameters, and a list of geometric patches.  This module
round-trips :class:`~repro.solver.case.Case` objects through a plain
JSON-serialisable dictionary with the same structure, so cases can be
saved, versioned, and launched from the command line
(``python -m repro run case.json``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common import ConfigurationError
from repro.eos import Mixture, StiffenedGas
from repro.grid import StructuredGrid
from repro.solver.case import Case, Patch, box, halfspace, sphere

#: Geometry kinds a case file may reference.
GEOMETRY_KINDS = ("box", "sphere", "halfspace")

#: Keys the optional ``"solver"`` section of a case file may carry.
SOLVER_OPTION_KEYS = ("threads", "ranks", "cluster_timeout", "max_restarts",
                      "layout", "fusion", "backend", "precision",
                      "checkpoint_every",
                      "checkpoint_keep", "checkpoint_dir", "validate_every",
                      "retry", "tuning", "tuning_cache")


def solver_options_from_dict(spec: dict) -> dict:
    """Validated runtime options from a case file's ``"solver"`` section.

    The section is optional and carries ``threads`` (worker count for
    the thread-tiled execution backend; a positive integer), ``ranks``
    (process count for multi-process block-decomposed runs; a positive
    integer) with its companions ``cluster_timeout`` (halo-wait /
    no-progress deadline in seconds; a positive number) and
    ``max_restarts`` (rank-failure restarts to attempt; an integer
    >= 0), ``layout``
    (sweep memory layout: ``"strided"``, ``"transposed"``, or
    ``"auto"``), ``fusion`` (sweep kernel fusion: ``"off"``, ``"on"``,
    or ``"auto"``; see :mod:`repro.acc.fusion`), the resilience knobs
    ``checkpoint_every`` /
    ``checkpoint_keep`` / ``checkpoint_dir`` / ``validate_every``, and
    a ``retry`` mapping for the rollback-retry policy (see
    :meth:`repro.solver.resilience.RetryPolicy.from_dict`).  Returns a
    plain dict of keyword arguments for
    :class:`~repro.solver.simulation.Simulation`; an absent section
    yields ``{}``.
    """
    solver = spec.get("solver")
    if solver is None:
        return {}
    if not isinstance(solver, dict):
        raise ConfigurationError(
            f"'solver' section must be a mapping, got {type(solver).__name__}")
    unknown = sorted(set(solver) - set(SOLVER_OPTION_KEYS))
    if unknown:
        raise ConfigurationError(
            f"unknown solver option(s) {unknown}; "
            f"choose from {sorted(SOLVER_OPTION_KEYS)}")
    options: dict = {}
    if "threads" in solver:
        threads = solver["threads"]
        if isinstance(threads, bool) or not isinstance(threads, int) \
                or threads < 1:
            raise ConfigurationError(
                f"solver threads must be a positive integer, got {threads!r}")
        options["threads"] = threads
    if "ranks" in solver:
        ranks = solver["ranks"]
        if isinstance(ranks, bool) or not isinstance(ranks, int) or ranks < 1:
            raise ConfigurationError(
                f"solver ranks must be a positive integer, got {ranks!r}")
        options["ranks"] = ranks
    if "cluster_timeout" in solver:
        value = solver["cluster_timeout"]
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or value <= 0:
            raise ConfigurationError(
                f"solver cluster_timeout must be a positive number, "
                f"got {value!r}")
        options["cluster_timeout"] = float(value)
    if "max_restarts" in solver:
        value = solver["max_restarts"]
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ConfigurationError(
                f"solver max_restarts must be an integer >= 0, got {value!r}")
        options["max_restarts"] = value
    if "layout" in solver:
        from repro.solver.sweep import validate_sweep_layout

        # JSON name "layout" maps to the Simulation kwarg sweep_layout
        # (Simulation.layout is the state layout).
        options["sweep_layout"] = validate_sweep_layout(solver["layout"])
    if "fusion" in solver:
        from repro.solver.sweep import validate_fusion

        options["fusion"] = validate_fusion(solver["fusion"])
    if "backend" in solver:
        from repro.backend import validate_backend

        options["backend"] = validate_backend(solver["backend"])
    if "precision" in solver:
        from repro.backend import validate_precision

        options["precision"] = validate_precision(solver["precision"])
    for key in ("checkpoint_every", "checkpoint_keep", "validate_every"):
        if key in solver:
            value = solver[key]
            floor = 1 if key == "checkpoint_keep" else 0
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < floor:
                raise ConfigurationError(
                    f"solver {key} must be an integer >= {floor}, got {value!r}")
            options[key] = value
    if "checkpoint_dir" in solver:
        value = solver["checkpoint_dir"]
        if not isinstance(value, str) or not value:
            raise ConfigurationError(
                f"solver checkpoint_dir must be a non-empty string, got {value!r}")
        options["checkpoint_dir"] = value
    if "retry" in solver:
        from repro.solver.resilience import RetryPolicy

        options["retry"] = RetryPolicy.from_dict(solver["retry"])
    if "tuning" in solver:
        value = solver["tuning"]
        if isinstance(value, dict):
            from repro.tuning import TuningPlan

            entry = dict(value)
            entry.setdefault("source", "manual")
            options["tuning"] = TuningPlan.from_dict(entry)
        elif value in ("off", "auto"):
            options["tuning"] = value
        else:
            raise ConfigurationError(
                f"solver tuning must be 'off', 'auto', or a plan mapping, "
                f"got {value!r}")
    if "tuning_cache" in solver:
        value = solver["tuning_cache"]
        if not isinstance(value, str) or not value:
            raise ConfigurationError(
                f"solver tuning_cache must be a non-empty string, got {value!r}")
        options["tuning_cache"] = value
    return options


def _geometry_from_dict(g: dict):
    kind = g.get("kind")
    if kind == "box":
        return box(g["lo"], g["hi"])
    if kind == "sphere":
        return sphere(g["center"], g["radius"])
    if kind == "halfspace":
        return halfspace(int(g["axis"]), float(g["threshold"]),
                         side=g.get("side", "below"))
    raise ConfigurationError(
        f"unknown patch geometry kind {kind!r}; choose from {GEOMETRY_KINDS}")


def case_from_dict(spec: dict) -> Case:
    """Build a :class:`Case` from a case-file dictionary."""
    for key in ("grid", "fluids", "patches"):
        if key not in spec:
            raise ConfigurationError(f"case file missing {key!r} section")
    solver_options_from_dict(spec)  # validate the optional section early

    gspec = spec["grid"]
    bounds = tuple(tuple(float(v) for v in b) for b in gspec["bounds"])
    shape = tuple(int(n) for n in gspec["shape"])
    stretch = gspec.get("stretching")
    if stretch:
        grid = StructuredGrid.stretched(
            bounds, shape, focus=tuple(float(v) for v in stretch["focus"]),
            strength=float(stretch.get("strength", 2.0)),
            width=float(stretch.get("width", 0.2)))
    else:
        grid = StructuredGrid.uniform(bounds, shape)

    fluids = tuple(
        StiffenedGas(gamma=float(f["gamma"]), pi_inf=float(f.get("pi_inf", 0.0)),
                     name=str(f.get("name", f"fluid{i}")))
        for i, f in enumerate(spec["fluids"]))
    case = Case(grid, Mixture(fluids))

    for pspec in spec["patches"]:
        case.add(Patch(
            region=_geometry_from_dict(pspec["geometry"]),
            alpha_rho=tuple(float(v) for v in pspec["alpha_rho"]),
            velocity=tuple(float(v) for v in pspec["velocity"]),
            pressure=float(pspec["pressure"]),
            alpha=tuple(float(v) for v in pspec["alpha"]),
            smear=float(pspec.get("smear", 0.0)),
        ))
    return case


def case_to_dict(case: Case, *, geometries: list[dict]) -> dict:
    """Serialise a case; closures cannot be introspected, so the caller
    supplies the geometry dictionaries in patch order."""
    if len(geometries) != len(case.patches):
        raise ConfigurationError(
            f"{len(geometries)} geometry specs for {len(case.patches)} patches")
    grid = case.grid
    bounds = [[float(f[0]), float(f[-1])] for f in grid.faces]
    spec = {
        "grid": {"bounds": bounds, "shape": list(grid.shape)},
        "fluids": [{"gamma": f.gamma, "pi_inf": f.pi_inf, "name": f.name}
                   for f in case.mixture.fluids],
        "patches": [],
    }
    for patch, g in zip(case.patches, geometries):
        if g.get("kind") not in GEOMETRY_KINDS:
            raise ConfigurationError(f"invalid geometry spec {g!r}")
        spec["patches"].append({
            "geometry": g,
            "alpha_rho": list(patch.alpha_rho),
            "velocity": list(patch.velocity),
            "pressure": patch.pressure,
            "alpha": list(patch.alpha),
            "smear": patch.smear,
        })
    return spec


def load_case(path: str | Path) -> Case:
    """Load a case from a JSON file."""
    with Path(path).open() as fh:
        return case_from_dict(json.load(fh))


def load_solver_options(path: str | Path) -> dict:
    """Validated solver options from a case file (``{}`` if absent)."""
    with Path(path).open() as fh:
        return solver_options_from_dict(json.load(fh))


#: Solver keys the ensemble runner understands (resilience and
#: multi-process knobs are single-case concerns; see
#: :mod:`repro.ensemble`).
ENSEMBLE_SOLVER_KEYS = ("threads", "layout", "fusion", "backend",
                        "tuning", "tuning_cache")


def ensemble_from_dict(spec: dict, *, base_dir: str | Path | None = None):
    """Jobs and options from an ensemble-spec dictionary.

    The spec carries a ``"jobs"`` list — each entry an inline
    ``"case"`` dictionary or a ``"case_file"`` path (resolved against
    ``base_dir``), plus an optional per-job ``"t_end"`` and ``"name"``
    — a top-level default ``"t_end"``, an optional ``"batch_width"``,
    and an optional ``"solver"`` section restricted to
    :data:`ENSEMBLE_SOLVER_KEYS`.  Returns ``(jobs, batch_width,
    options)`` where ``jobs`` is a list of
    :class:`repro.ensemble.EnsembleJob` and ``options`` the keyword
    arguments for :class:`repro.ensemble.EnsembleRunner`.
    """
    from repro.ensemble import EnsembleJob

    jobs_spec = spec.get("jobs")
    if not isinstance(jobs_spec, list) or not jobs_spec:
        raise ConfigurationError(
            "ensemble spec needs a non-empty 'jobs' list")
    default_t_end = spec.get("t_end")
    batch_width = spec.get("batch_width", 8)
    if isinstance(batch_width, bool) or not isinstance(batch_width, int) \
            or batch_width < 1:
        raise ConfigurationError(
            f"batch_width must be a positive integer, got {batch_width!r}")
    solver = spec.get("solver")
    if solver is not None:
        unknown = sorted(set(solver) - set(ENSEMBLE_SOLVER_KEYS))
        if unknown:
            raise ConfigurationError(
                f"ensemble solver option(s) {unknown} not supported; "
                f"choose from {sorted(ENSEMBLE_SOLVER_KEYS)}")
    options = solver_options_from_dict(spec)

    base = Path(base_dir) if base_dir is not None else Path(".")
    jobs = []
    for i, jspec in enumerate(jobs_spec):
        if not isinstance(jspec, dict):
            raise ConfigurationError(
                f"ensemble job {i} must be a mapping, "
                f"got {type(jspec).__name__}")
        if ("case" in jspec) == ("case_file" in jspec):
            raise ConfigurationError(
                f"ensemble job {i} needs exactly one of 'case' (inline) "
                f"or 'case_file' (path)")
        if "case" in jspec:
            case = case_from_dict(jspec["case"])
        else:
            case = load_case(base / jspec["case_file"])
        t_end = jspec.get("t_end", default_t_end)
        if t_end is None:
            raise ConfigurationError(
                f"ensemble job {i} has no 't_end' and the spec sets "
                f"no default")
        jobs.append(EnsembleJob(case, float(t_end),
                                str(jspec.get("name", f"job{i}"))))
    return jobs, batch_width, options


#: Keys the ensemble spec's optional ``"service"`` section accepts —
#: knobs of :class:`repro.ensemble.EnsembleService`.  Path-valued keys
#: resolve relative to the spec file's directory.
SERVICE_KEYS = ("ledger", "checkpoint_dir", "results_dir",
                "max_attempts", "retry_base_seconds", "deadline_seconds",
                "wall_limit_seconds", "supervise", "checkpoint_every",
                "checkpoint_keep", "degrade_after", "min_batch_width")

_SERVICE_PATH_KEYS = ("ledger", "checkpoint_dir", "results_dir")


def service_options_from_dict(spec: dict, *,
                              base_dir: str | Path | None = None) -> dict:
    """Validated durable-service options (``{}`` when absent).

    The ``"service"`` section turns a fire-and-forget ensemble run into
    a durable campaign: a ``"ledger"`` path is mandatory once the
    section exists, everything else defaults.  See
    :class:`repro.ensemble.EnsembleService`.
    """
    service = spec.get("service")
    if service is None:
        return {}
    if not isinstance(service, dict):
        raise ConfigurationError(
            f"'service' section must be a mapping, "
            f"got {type(service).__name__}")
    unknown = sorted(set(service) - set(SERVICE_KEYS))
    if unknown:
        raise ConfigurationError(
            f"service option(s) {unknown} not supported; "
            f"choose from {sorted(SERVICE_KEYS)}")
    if "ledger" not in service:
        raise ConfigurationError(
            "a 'service' section needs a 'ledger' path")
    base = Path(base_dir) if base_dir is not None else Path(".")
    out = dict(service)
    for key in _SERVICE_PATH_KEYS:
        if key in out:
            if not isinstance(out[key], str) or not out[key]:
                raise ConfigurationError(
                    f"service option {key!r} must be a non-empty path "
                    f"string, got {out[key]!r}")
            out[key] = base / out[key]
    return out


def load_ensemble(path: str | Path):
    """Load an ensemble spec from JSON; see :func:`ensemble_from_dict`.

    ``case_file`` references resolve relative to the spec's directory.
    Ignores any ``"service"`` section — use :func:`load_ensemble_spec`
    for the durable-service variant.
    """
    jobs, batch_width, options, _service = load_ensemble_spec(path)
    return jobs, batch_width, options


def load_ensemble_spec(path: str | Path):
    """Load an ensemble spec including its durable-service options.

    Returns ``(jobs, batch_width, options, service)`` where ``service``
    is ``{}`` for plain in-memory specs and otherwise the validated
    keyword arguments (ledger/checkpoint/results paths resolved
    relative to the spec file) for
    :class:`repro.ensemble.EnsembleService`.
    """
    path = Path(path)
    with path.open() as fh:
        spec = json.load(fh)
    jobs, batch_width, options = ensemble_from_dict(
        spec, base_dir=path.parent)
    service = service_options_from_dict(spec, base_dir=path.parent)
    return jobs, batch_width, options, service


def save_case(path: str | Path, spec: dict) -> None:
    """Write a case-file dictionary as JSON (validating it builds first)."""
    case_from_dict(spec)  # raises on malformed specs
    with Path(path).open("w") as fh:
        json.dump(spec, fh, indent=2)
