"""File I/O: binary snapshots, parallel-write strategies, post-processing.

The paper (§III-A) describes MFC's two write strategies — one shared
MPI-IO binary file, or one file per process with access granted in
128-rank waves — and a host-side post-processor that turns the binary
files into SILO databases for ParaView/VisIt.  This package implements
working analogs of all three:

* :mod:`repro.io.binary` — the snapshot format (header + raw float64),
* :mod:`repro.io.parallel` — shared-file and file-per-process writers
  over a block decomposition, with wave throttling and byte accounting,
* :mod:`repro.io.silo` — the post-processor ("SILO" stands in for a
  portable ``.npz`` database with coordinates and named fields),
* :mod:`repro.io.case_files` — JSON case files, the analog of MFC's
  Python-dictionary input decks.
"""

from repro.io.binary import (
    SnapshotHeader,
    read_snapshot,
    verify_snapshot,
    write_snapshot,
)
from repro.io.checkpoint import CheckpointManager
from repro.io.parallel import (
    gather_shared_file,
    write_file_per_process,
    write_shared_file,
)
from repro.io.silo import export_silo, load_silo
from repro.io.case_files import case_from_dict, case_to_dict, load_case, save_case
from repro.io.series import SeriesReader, SeriesWriter

__all__ = [
    "SnapshotHeader",
    "write_snapshot",
    "read_snapshot",
    "verify_snapshot",
    "CheckpointManager",
    "write_shared_file",
    "gather_shared_file",
    "write_file_per_process",
    "export_silo",
    "load_silo",
    "case_from_dict",
    "case_to_dict",
    "load_case",
    "save_case",
    "SeriesWriter",
    "SeriesReader",
]
