"""Binary snapshot format (MFC's MPI-IO binary file analog).

A snapshot is a fixed-size header followed by the raw C-order float64
state.  The header carries everything a restart or post-processor needs:
magic, format version, step, simulation time, variable count, the
spatial extents, and — since format version 2 — the payload's dtype
string (which encodes endianness), its memory-order tag, and CRC32
checksums over both the header and the payload.

Durability discipline (version 2):

* **Atomic writes** — the snapshot is written to a temporary file in
  the destination directory, flushed and ``fsync``'d, then renamed over
  the target, so a crash mid-write can never leave a half-written file
  under the final name.
* **Integrity** — ``read_snapshot`` verifies the header CRC before
  trusting any field and the payload CRC before returning data; a
  truncated or bit-flipped file raises
  :class:`~repro.common.CheckpointError` instead of silently feeding
  garbage into a restart.
* **Compatibility** — the recorded dtype/endianness/order must match
  what this build writes (little-endian C-order float64); mismatches
  raise a :class:`~repro.common.CheckpointError` naming both sides.

Version-1 files (shape-only metadata, no checksums) remain readable for
old restart archives; they simply skip the integrity checks.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common import CheckpointError, ConfigurationError, DTYPE

MAGIC = b"MFCR"
VERSION = 2

#: Version-1 layout: magic, version, ndim, step, time, nvars + 3 extents.
_HEADER_FMT_V1 = "<4sHHqd4q"
_HEADER_BYTES_V1 = struct.calcsize(_HEADER_FMT_V1)

#: Version-2 layout: the v1 fields, then the payload dtype string (numpy
#: ``dtype.str``, e.g. ``"<f8"`` — byte order + kind + itemsize), the
#: memory-order tag (``"C"``), 3 pad bytes, the payload CRC32, and the
#: CRC32 of every preceding header byte.
_HEADER_FMT_V2 = "<4sHHqd4q8ss3xII"
HEADER_BYTES = struct.calcsize(_HEADER_FMT_V2)

#: What this build writes (and the only payload encoding it marches on).
NATIVE_DTYPE_STR = np.dtype(DTYPE).newbyteorder("<").str
NATIVE_ORDER = "C"


@dataclass(frozen=True)
class SnapshotHeader:
    """Metadata of one snapshot."""

    step: int
    time: float
    nvars: int
    shape: tuple[int, ...]
    dtype_str: str = NATIVE_DTYPE_STR
    order: str = NATIVE_ORDER
    version: int = VERSION

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def pack(self, payload_crc: int = 0) -> bytes:
        extents = list(self.shape) + [0] * (3 - len(self.shape))
        body = struct.pack("<4sHHqd4q8ss3x", MAGIC, VERSION, self.ndim,
                           self.step, self.time, self.nvars, *extents,
                           self.dtype_str.encode("ascii"),
                           self.order.encode("ascii"))
        body += struct.pack("<I", payload_crc & 0xFFFFFFFF)
        return body + struct.pack("<I", zlib.crc32(body))

    @classmethod
    def unpack(cls, raw: bytes) -> tuple["SnapshotHeader", int]:
        """Parse a header; returns ``(header, expected_payload_crc)``.

        Version-1 headers carry no checksums; their payload CRC is
        reported as ``-1`` (callers skip payload verification).
        """
        if len(raw) < _HEADER_BYTES_V1:
            raise CheckpointError(
                f"truncated snapshot header: {len(raw)} bytes",
                reason="truncated")
        magic, version = struct.unpack_from("<4sH", raw)
        if magic != MAGIC:
            raise CheckpointError("not a repro snapshot file (bad magic)",
                                  reason="magic")
        if version == 1:
            _, _, ndim, step, time, nvars, *extents = struct.unpack(
                _HEADER_FMT_V1, raw[:_HEADER_BYTES_V1])
            if not 1 <= ndim <= 3:
                raise CheckpointError(f"corrupt snapshot: ndim={ndim}",
                                  reason="corrupt")
            return cls(step=step, time=time, nvars=nvars,
                       shape=tuple(extents[:ndim]), version=1), -1
        if version != VERSION:
            raise CheckpointError(f"unsupported snapshot version {version}",
                                  reason="version")
        if len(raw) < HEADER_BYTES:
            raise CheckpointError(
                f"truncated snapshot header: {len(raw)} of "
                f"{HEADER_BYTES} bytes", reason="truncated")
        raw = raw[:HEADER_BYTES]
        (header_crc,) = struct.unpack_from("<I", raw, HEADER_BYTES - 4)
        if zlib.crc32(raw[:HEADER_BYTES - 4]) != header_crc:
            raise CheckpointError("snapshot header failed its CRC32 check",
                                  reason="crc")
        (_, _, ndim, step, time, nvars, *rest) = struct.unpack(
            _HEADER_FMT_V2, raw)
        extents, dtype_b, order_b, payload_crc = rest[:3], rest[3], rest[4], rest[5]
        if not 1 <= ndim <= 3:
            raise CheckpointError(f"corrupt snapshot: ndim={ndim}",
                                  reason="corrupt")
        return cls(step=step, time=time, nvars=nvars,
                   shape=tuple(extents[:ndim]),
                   dtype_str=dtype_b.rstrip(b"\x00").decode("ascii"),
                   order=order_b.decode("ascii")), payload_crc

    def header_bytes(self) -> int:
        return HEADER_BYTES if self.version >= 2 else _HEADER_BYTES_V1

    def check_compatible(self) -> None:
        """Raise :class:`CheckpointError` unless this build can decode
        the recorded payload encoding (dtype + endianness + order)."""
        if self.dtype_str != NATIVE_DTYPE_STR:
            raise CheckpointError(
                f"checkpoint payload dtype {self.dtype_str!r} does not "
                f"match this build's {NATIVE_DTYPE_STR!r} "
                f"(dtype/endianness mismatch)", reason="incompatible")
        if self.order != NATIVE_ORDER:
            raise CheckpointError(
                f"checkpoint payload layout {self.order!r} does not "
                f"match this build's {NATIVE_ORDER!r} (C order)",
                reason="incompatible")

    def nbytes(self) -> int:
        n = self.nvars
        for s in self.shape:
            n *= s
        return n * 8


def write_snapshot(path: str | Path, q: np.ndarray, *, step: int,
                   time: float, durable: bool = True) -> int:
    """Write a conservative field ``(nvars, *shape)``; returns bytes written.

    The write is atomic: data goes to a temporary sibling file which is
    flushed, ``fsync``'d (when ``durable``, the default), and renamed
    over ``path`` — readers never observe a partially written snapshot.
    """
    from repro.backend import to_host_array

    q = to_host_array(q)  # D2H: snapshots are a host-side consumer
    if q.dtype != DTYPE:
        if q.dtype.kind == "f" and q.dtype.itemsize < np.dtype(DTYPE).itemsize:
            # float32 states upcast losslessly; the restart path casts
            # back down, so the round-trip is exact.
            q = q.astype(DTYPE)
        else:
            raise ConfigurationError(
                f"snapshots store {DTYPE}, got {q.dtype}")
    if not 2 <= q.ndim <= 4:
        raise ConfigurationError(f"expected (nvars, *spatial) field, got ndim={q.ndim}")
    header = SnapshotHeader(step=step, time=time, nvars=q.shape[0],
                            shape=q.shape[1:])
    payload = np.ascontiguousarray(q).tobytes()
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    try:
        with tmp.open("wb") as fh:
            fh.write(header.pack(zlib.crc32(payload)))
            fh.write(payload)
            fh.flush()
            if durable:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    if durable:
        try:  # persist the rename itself (best effort off Linux)
            dir_fd = os.open(path.parent, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:
            pass
    return HEADER_BYTES + header.nbytes()


def read_snapshot(path: str | Path) -> tuple[SnapshotHeader, np.ndarray]:
    """Read a snapshot back, verifying integrity; returns ``(header, field)``.

    Raises :class:`~repro.common.CheckpointError` on truncation, CRC
    failure, or a dtype/endianness/layout mismatch.
    """
    path = Path(path)
    with path.open("rb") as fh:
        header, payload_crc = SnapshotHeader.unpack(fh.read(HEADER_BYTES))
        header.check_compatible()
        fh.seek(header.header_bytes())
        data = fh.read(header.nbytes())
    if len(data) != header.nbytes():
        raise CheckpointError(
            f"truncated snapshot {path}: {len(data)} of {header.nbytes()} "
            f"bytes", reason="truncated")
    if payload_crc >= 0 and zlib.crc32(data) != payload_crc:
        raise CheckpointError(
            f"snapshot {path} payload failed its CRC32 check", reason="crc")
    q = np.frombuffer(data, dtype=DTYPE).reshape((header.nvars, *header.shape))
    return header, q.copy()


def verify_snapshot(path: str | Path) -> SnapshotHeader:
    """Integrity-check a snapshot without keeping its payload.

    Returns the verified header; raises
    :class:`~repro.common.CheckpointError` exactly where
    :func:`read_snapshot` would.
    """
    header, _ = read_snapshot(path)
    return header
