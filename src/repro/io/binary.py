"""Binary snapshot format (MFC's MPI-IO binary file analog).

A snapshot is a fixed-size header followed by the raw C-order float64
state.  The header carries everything a restart or post-processor needs:
magic, format version, step, simulation time, variable count, and the
spatial extents.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.common import ConfigurationError, DTYPE

MAGIC = b"MFCR"
VERSION = 1
_HEADER_FMT = "<4sHHqd4q"  # magic, version, ndim, step, time, nvars + 3 extents
HEADER_BYTES = struct.calcsize(_HEADER_FMT)


@dataclass(frozen=True)
class SnapshotHeader:
    """Metadata of one snapshot."""

    step: int
    time: float
    nvars: int
    shape: tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def pack(self) -> bytes:
        extents = list(self.shape) + [0] * (3 - len(self.shape))
        return struct.pack(_HEADER_FMT, MAGIC, VERSION, self.ndim,
                           self.step, self.time, self.nvars, *extents)

    @classmethod
    def unpack(cls, raw: bytes) -> "SnapshotHeader":
        magic, version, ndim, step, time, nvars, *extents = struct.unpack(
            _HEADER_FMT, raw)
        if magic != MAGIC:
            raise ConfigurationError("not a repro snapshot file (bad magic)")
        if version != VERSION:
            raise ConfigurationError(f"unsupported snapshot version {version}")
        if not 1 <= ndim <= 3:
            raise ConfigurationError(f"corrupt snapshot: ndim={ndim}")
        return cls(step=step, time=time, nvars=nvars,
                   shape=tuple(extents[:ndim]))

    def nbytes(self) -> int:
        n = self.nvars
        for s in self.shape:
            n *= s
        return n * 8


def write_snapshot(path: str | Path, q: np.ndarray, *, step: int,
                   time: float) -> int:
    """Write a conservative field ``(nvars, *shape)``; returns bytes written."""
    if q.dtype != DTYPE:
        raise ConfigurationError(f"snapshots store {DTYPE}, got {q.dtype}")
    if not 2 <= q.ndim <= 4:
        raise ConfigurationError(f"expected (nvars, *spatial) field, got ndim={q.ndim}")
    header = SnapshotHeader(step=step, time=time, nvars=q.shape[0],
                            shape=q.shape[1:])
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(header.pack())
        fh.write(np.ascontiguousarray(q).tobytes())
    return HEADER_BYTES + header.nbytes()


def read_snapshot(path: str | Path) -> tuple[SnapshotHeader, np.ndarray]:
    """Read a snapshot back; returns ``(header, field)``."""
    path = Path(path)
    with path.open("rb") as fh:
        header = SnapshotHeader.unpack(fh.read(HEADER_BYTES))
        data = fh.read(header.nbytes())
    if len(data) != header.nbytes():
        raise ConfigurationError(
            f"truncated snapshot {path}: {len(data)} of {header.nbytes()} bytes")
    q = np.frombuffer(data, dtype=DTYPE).reshape((header.nvars, *header.shape))
    return header, q.copy()
