"""Parallel write strategies over a block decomposition (paper §III-A).

Both strategies MFC used are implemented functionally over simulated
ranks:

* **Shared file** — every rank's block is written into one binary file
  at its global offset (the MPI-IO collective-write analog); a gather
  routine reassembles the global field.
* **File per process** — each rank writes its own snapshot, with file
  creation throttled to waves of (by default) 128 ranks.  "Write access
  is allowed in waves of 128 processes" — the wave schedule is returned
  so tests can assert the throttling behaviour.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.cluster.decomposition import BlockDecomposition
from repro.common import ConfigurationError, DTYPE
from repro.io.binary import HEADER_BYTES, SnapshotHeader, read_snapshot, write_snapshot


@dataclass(frozen=True)
class WaveSchedule:
    """Which ranks wrote in which wave (file-per-process strategy)."""

    wave_size: int
    waves: tuple[tuple[int, ...], ...]

    @property
    def num_waves(self) -> int:
        return len(self.waves)


def write_shared_file(path: str | Path, decomp: BlockDecomposition,
                      blocks: list[np.ndarray], *, step: int, time: float) -> int:
    """All ranks write into one shared binary file at their global offsets.

    Layout: one snapshot header for the *global* field, then the global
    C-order array; each rank writes only its slab of bytes (via seek),
    exactly as MPI-IO file views do.  Returns total bytes written.
    """
    if len(blocks) != decomp.nranks:
        raise ConfigurationError(
            f"{len(blocks)} blocks for {decomp.nranks} ranks")
    nvars = blocks[0].shape[0]
    header = SnapshotHeader(step=step, time=time, nvars=nvars,
                            shape=decomp.global_cells)
    path = Path(path)

    # Pre-size the file (the collective create).
    with path.open("wb") as fh:
        fh.write(header.pack())
        fh.truncate(HEADER_BYTES + header.nbytes())

    itemsize = 8
    global_shape = decomp.global_cells
    # Strides (in elements) of the global C-order array.
    strides = [1] * len(global_shape)
    for d in range(len(global_shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * global_shape[d + 1]
    cells_per_var = int(np.prod(global_shape))

    total = HEADER_BYTES
    with path.open("r+b") as fh:
        for rank, block in enumerate(blocks):
            slices = decomp.local_slices(rank)
            if block.shape != (nvars, *decomp.local_cells(rank)):
                raise ConfigurationError(f"rank {rank}: block shape mismatch")
            # Write contiguous runs along the last axis.
            last = slices[-1]
            run = last.stop - last.start
            outer_shape = block.shape[1:-1]
            for var in range(nvars):
                var_base = var * cells_per_var
                for idx in np.ndindex(*outer_shape) if outer_shape else [()]:
                    offset = var_base + last.start * strides[-1]
                    for d, i in enumerate(idx):
                        offset += (slices[d].start + i) * strides[d]
                    fh.seek(HEADER_BYTES + offset * itemsize)
                    row = block[(var, *idx, slice(None))]
                    fh.write(np.ascontiguousarray(row).tobytes())
                    total += run * itemsize
        # Finalize: now that every rank's slab landed, stamp the payload
        # CRC32 into the header (the "close the collective file" step),
        # so gathers get the same integrity check as plain snapshots.
        fh.seek(HEADER_BYTES)
        crc = 0
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
        fh.seek(0)
        fh.write(header.pack(crc))
    return total


def gather_shared_file(path: str | Path) -> tuple[SnapshotHeader, np.ndarray]:
    """Read a shared file back as the global field."""
    return read_snapshot(path)


def write_file_per_process(directory: str | Path, decomp: BlockDecomposition,
                           blocks: list[np.ndarray], *, step: int, time: float,
                           wave_size: int = 128) -> WaveSchedule:
    """Each rank writes ``rank_<r>.bin`` in its own wave slot.

    Returns the wave schedule; files land in ``directory``.
    """
    if wave_size < 1:
        raise ConfigurationError("wave_size must be >= 1")
    if len(blocks) != decomp.nranks:
        raise ConfigurationError(
            f"{len(blocks)} blocks for {decomp.nranks} ranks")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    waves = []
    ranks = list(range(decomp.nranks))
    for start in range(0, len(ranks), wave_size):
        wave = tuple(ranks[start: start + wave_size])
        for rank in wave:
            write_snapshot(directory / f"rank_{rank:06d}.bin", blocks[rank],
                           step=step, time=time)
        waves.append(wave)
    return WaveSchedule(wave_size=wave_size, waves=tuple(waves))


def gather_file_per_process(directory: str | Path,
                            decomp: BlockDecomposition) -> tuple[SnapshotHeader, np.ndarray]:
    """Reassemble the global field from per-rank files."""
    directory = Path(directory)
    header0 = None
    out = None
    for rank in range(decomp.nranks):
        header, block = read_snapshot(directory / f"rank_{rank:06d}.bin")
        if out is None:
            header0 = SnapshotHeader(step=header.step, time=header.time,
                                     nvars=header.nvars,
                                     shape=decomp.global_cells)
            out = np.empty((header.nvars, *decomp.global_cells), dtype=DTYPE)
        if block.shape[1:] != decomp.local_cells(rank):
            raise ConfigurationError(f"rank {rank}: stored block shape mismatch")
        out[(slice(None), *decomp.local_slices(rank))] = block
    assert header0 is not None and out is not None
    return header0, out
