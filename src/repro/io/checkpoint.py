"""Durable checkpoint directory: rotation, verification, fallback.

Long production runs (the paper's multi-day, 65,536-device campaigns)
survive hardware faults by periodically writing restart snapshots and,
on failure, restarting from the newest one that is still intact.  A
:class:`CheckpointManager` owns one directory of rotating snapshots:

* **save** writes atomically (temp file + fsync + rename, via
  :func:`repro.io.binary.write_snapshot`) and prunes all but the newest
  ``keep`` checkpoints,
* **load_latest** walks the directory newest-first, verifies each
  candidate's CRC32 checksums, and returns the first valid one —
  a truncated or bit-flipped newest checkpoint silently falls back to
  its predecessor instead of killing the restart.

The scan/rejection tallies are kept on the manager so drivers can
surface them in recovery reports.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from repro.common import CheckpointError, ConfigurationError
from repro.io.binary import SnapshotHeader, read_snapshot, write_snapshot

#: Checkpoint file names: ``<prefix>_<step>.bin`` (step zero-padded so
#: lexicographic order matches step order).
_STEP_WIDTH = 9


class CheckpointManager:
    """Rotating, integrity-checked checkpoints in one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first save.
    keep:
        How many checkpoints to retain (oldest pruned first).
    prefix:
        File-name prefix (lets several runs share a directory).

    Attributes
    ----------
    verified / rejected:
        How many candidate checkpoints passed / failed integrity
        verification across this manager's lifetime (surfaced in the
        recovery counters).
    skip_reasons:
        Rejection tally keyed by :attr:`CheckpointError.reason
        <repro.common.errors.CheckpointError>` category (``"crc"``,
        ``"truncated"``, ``"shape"``, ...), so reports can say *why*
        fallback skipped a snapshot, not just how often.
    events:
        One structured dict per rejection (``kind``, ``checkpoint``,
        ``reason``, ``detail``) in observation order — the recovery
        event stream drivers fold into their own logs.
    """

    def __init__(self, directory: str | Path, *, keep: int = 3,
                 prefix: str = "ckpt") -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        if not re.fullmatch(r"[A-Za-z0-9._-]+", prefix):
            raise ConfigurationError(f"invalid checkpoint prefix {prefix!r}")
        self.directory = Path(directory)
        self.keep = keep
        self.prefix = prefix
        self.verified = 0
        self.rejected = 0
        self.skip_reasons: dict[str, int] = {}
        self.events: list[dict] = []

    # ------------------------------------------------------------------
    def path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}_{step:0{_STEP_WIDTH}d}.bin"

    def checkpoints(self) -> list[Path]:
        """Existing checkpoint files, oldest first (by recorded step)."""
        if not self.directory.is_dir():
            return []
        pattern = re.compile(
            rf"{re.escape(self.prefix)}_(\d{{{_STEP_WIDTH}}})\.bin")
        found = [(int(m.group(1)), p)
                 for p in self.directory.iterdir()
                 if (m := pattern.fullmatch(p.name))]
        return [p for _, p in sorted(found)]

    # ------------------------------------------------------------------
    def save(self, q: np.ndarray, *, step: int, time: float) -> Path:
        """Atomically write one checkpoint and prune beyond ``keep``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(step)
        write_snapshot(path, q, step=step, time=time)
        for old in self.checkpoints()[:-self.keep]:
            old.unlink(missing_ok=True)
        return path

    # ------------------------------------------------------------------
    def load_latest(
        self, *, expect_shape: tuple[int, ...] | None = None,
    ) -> tuple[Path, SnapshotHeader, np.ndarray]:
        """The newest checkpoint that passes verification.

        Walks newest-to-oldest; corrupt candidates (CRC failure,
        truncation, metadata mismatch) are counted in ``rejected`` and
        skipped.  ``expect_shape`` additionally rejects checkpoints of
        the wrong field shape (a different case in the same directory).
        Raises :class:`~repro.common.CheckpointError` when nothing
        survives.
        """
        candidates = self.checkpoints()
        reasons: list[str] = []
        for path in reversed(candidates):
            try:
                header, q = read_snapshot(path)
                if expect_shape is not None \
                        and (header.nvars, *header.shape) != tuple(expect_shape):
                    raise CheckpointError(
                        f"checkpoint shape {(header.nvars, *header.shape)} "
                        f"does not match case {tuple(expect_shape)}",
                        reason="shape")
            except CheckpointError as err:
                reason = getattr(err, "reason", "corrupt")
                self.rejected += 1
                self.skip_reasons[reason] = \
                    self.skip_reasons.get(reason, 0) + 1
                self.events.append({
                    "kind": "checkpoint-skip", "checkpoint": path.name,
                    "reason": reason, "detail": str(err)})
                reasons.append(f"{path.name}: {err}")
                continue
            self.verified += 1
            return path, header, q
        detail = ("; ".join(reasons) if reasons
                  else f"no checkpoints under {self.directory}")
        raise CheckpointError(f"no valid checkpoint to restart from ({detail})")
