"""Batched ensemble execution: one stacked RHS for N concurrent cases.

See :mod:`repro.ensemble.simulation` for the bitwise contract,
:mod:`repro.ensemble.runner` for the signature-grouping scheduler, and
:mod:`repro.ensemble.service` for the durable, crash-tolerant job
service (write-ahead ledger, supervised batches, retry/quarantine).
"""

from repro.ensemble.ledger import JobLedger, LedgerReplay, job_table
from repro.ensemble.runner import (
    BatchRecord,
    EnsembleJob,
    EnsembleReport,
    EnsembleRunner,
    batch_signature,
    plan_job_batches,
)
from repro.ensemble.service import EnsembleService, JobOutcome, ServiceReport
from repro.ensemble.simulation import EnsembleCaseResult, EnsembleSimulation
from repro.ensemble.state import EnsembleState
from repro.ensemble.supervisor import BatchSpec, BatchSupervisor, execute_batch

__all__ = [
    "BatchRecord",
    "BatchSpec",
    "BatchSupervisor",
    "EnsembleCaseResult",
    "EnsembleJob",
    "EnsembleReport",
    "EnsembleRunner",
    "EnsembleService",
    "EnsembleSimulation",
    "EnsembleState",
    "JobLedger",
    "JobOutcome",
    "LedgerReplay",
    "ServiceReport",
    "batch_signature",
    "execute_batch",
    "job_table",
    "plan_job_batches",
]
