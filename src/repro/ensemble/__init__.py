"""Batched ensemble execution: one stacked RHS for N concurrent cases.

See :mod:`repro.ensemble.simulation` for the bitwise contract and
:mod:`repro.ensemble.runner` for the signature-grouping scheduler.
"""

from repro.ensemble.runner import (
    BatchRecord,
    EnsembleJob,
    EnsembleReport,
    EnsembleRunner,
    batch_signature,
)
from repro.ensemble.simulation import EnsembleCaseResult, EnsembleSimulation
from repro.ensemble.state import EnsembleState

__all__ = [
    "BatchRecord",
    "EnsembleCaseResult",
    "EnsembleJob",
    "EnsembleReport",
    "EnsembleRunner",
    "EnsembleSimulation",
    "EnsembleState",
    "batch_signature",
]
