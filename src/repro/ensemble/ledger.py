"""Write-ahead job ledger: append-only, CRC-framed, replayable.

The durable ensemble service records every job transition here *before*
acting on it, so a killed ``python -m repro ensemble`` invocation can
replay the file and resume exactly where it left off.  The format is
one record per line::

    crc32(payload) as 8 hex chars, one space, payload, newline

where the payload is a compact ``sort_keys`` JSON object.  The framing
gives the same single-file durability contract as the snapshot format
(:mod:`repro.io.binary`), adapted to an append-only log:

* **Appends are fsync'd** — a record is only acted on after it is on
  disk, so the ledger never under-reports what the service started.
* **A torn tail is dropped** — a crash mid-append leaves at most one
  half-written final line; replay drops it (``dropped_tail``) and the
  resumed service simply redoes the unrecorded transition.
* **A flipped bit loses one line, never the file** — CRC-failing or
  unparseable records mid-file are skipped with a counted warning
  (``skipped_records``); replay can never mistake corrupt bytes for a
  transition (a single bit flip always breaks the line's CRC).
* **Compaction is atomic** — :meth:`JobLedger.rewrite` goes through
  mkstemp + fsync + rename, the same discipline as snapshot writes, so
  rotation can never destroy the only copy.

Record kinds (the ``kind`` field):

``open``
    Written once per spec: the spec digest and job count, verified on
    resume so a ledger is never replayed against a different campaign.
``job``
    A job transition: ``id``, ``status`` (one of :data:`JOB_STATES`),
    the attempt number, and — for ``done`` — the result snapshot path,
    state digest, final step and time.
``event``
    A structured service event (degradation, checkpoint skip, chaos),
    kept for audit; replay ignores events when building the job table.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.common import ConfigurationError, InjectedCrash

#: On-disk ledger format version (stamped into the ``open`` record).
LEDGER_VERSION = 1

#: The job lifecycle.  ``pending`` is implicit (no record yet);
#: ``running`` marks dispatch; ``done``/``quarantined`` are terminal;
#: ``failed`` jobs retry until their attempt budget quarantines them.
JOB_STATES = ("pending", "running", "done", "failed", "quarantined")

_LINE_RE = re.compile(r"([0-9a-f]{8}) (\{.*\})")


def encode_record(record: dict) -> bytes:
    """One CRC-framed ledger line (including the trailing newline)."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    data = payload.encode("utf-8")
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x} ".encode("ascii") \
        + data + b"\n"


def decode_record(line: bytes) -> dict | None:
    """Parse one ledger line; ``None`` if framing, CRC, or JSON fails."""
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError:
        return None
    m = _LINE_RE.fullmatch(text)
    if m is None:
        return None
    crc, payload = m.group(1), m.group(2)
    if zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF != int(crc, 16):
        return None
    try:
        record = json.loads(payload)
    except json.JSONDecodeError:
        return None
    return record if isinstance(record, dict) else None


@dataclass
class LedgerReplay:
    """What a replay recovered: the valid records plus damage tallies."""

    records: list[dict] = field(default_factory=list)
    #: CRC-failing / unparseable lines skipped mid-file (bit flips).
    skipped_records: int = 0
    #: Invalid trailing lines dropped (torn final append).
    dropped_tail: int = 0

    @property
    def damaged(self) -> bool:
        return bool(self.skipped_records or self.dropped_tail)


class JobLedger:
    """Append-only JSONL job ledger with per-record CRC32 framing.

    One service invocation is the sole writer; appends are flushed and
    fsync'd before returning so every acknowledged record survives the
    writer's death.  ``fail_after_appends`` is a deterministic crash
    hook for kill-at-every-step tests: when set to ``n``, the ``n``-th
    append completes durably and then raises
    :class:`~repro.common.InjectedCrash` — the record is on disk, the
    process "died" immediately after, which is the worst ordering a
    real SIGKILL can produce.
    """

    def __init__(self, path: str | Path, *,
                 fail_after_appends: int | None = None) -> None:
        self.path = Path(path)
        #: Appends performed by this instance (the crash hook's clock).
        self.appends = 0
        #: Crash after the N-th append of this instance (tests only).
        self.fail_after_appends = fail_after_appends

    def exists(self) -> bool:
        return self.path.is_file()

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record (write + flush + fsync)."""
        if not isinstance(record, dict) or "kind" not in record:
            raise ConfigurationError(
                f"ledger records are dicts with a 'kind', got {record!r}")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("ab") as fh:
            fh.write(encode_record(record))
            fh.flush()
            os.fsync(fh.fileno())
        self.appends += 1
        if self.fail_after_appends is not None \
                and self.appends >= self.fail_after_appends:
            raise InjectedCrash(
                f"injected crash after ledger append {self.appends} "
                f"({record.get('kind')}/{record.get('status', '-')})")

    # ------------------------------------------------------------------
    def replay(self) -> LedgerReplay:
        """Recover every intact record, tolerating torn or flipped lines.

        Invalid lines at the very end of the file are counted as
        ``dropped_tail`` (the torn-append case); invalid lines with
        valid records after them are ``skipped_records`` (silent media
        corruption).  A missing file replays to an empty ledger.
        """
        replay = LedgerReplay()
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return replay
        bad_run = 0  # consecutive invalid lines, pending classification
        for line in raw.split(b"\n"):
            if not line:
                continue
            record = decode_record(line)
            if record is None:
                bad_run += 1
                continue
            replay.skipped_records += bad_run
            bad_run = 0
            replay.records.append(record)
        replay.dropped_tail = bad_run
        return replay

    # ------------------------------------------------------------------
    def rewrite(self, records: list[dict]) -> None:
        """Atomically replace the ledger's contents (compaction).

        mkstemp in the ledger's directory, write + fsync, rename over
        the live file — a crash mid-rotation leaves either the old
        ledger or the new one, never a mix and never nothing.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path.parent,
                                   prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                for record in records:
                    fh.write(encode_record(record))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
def job_table(records: list[dict]) -> dict[str, dict]:
    """Fold replayed records into the latest known state per job.

    Returns ``{job_id: {"status", "attempts", ...}}`` where ``attempts``
    counts *recorded failures* (the retry budget's currency — an
    interruption that never got a failure record costs no attempt) and
    ``done`` entries carry the result snapshot metadata.  Records are
    applied in file order; unknown kinds and malformed job records are
    ignored, so a damaged ledger still folds to a consistent table.
    """
    table: dict[str, dict] = {}
    for record in records:
        if record.get("kind") != "job":
            continue
        job_id = record.get("id")
        status = record.get("status")
        if not isinstance(job_id, str) or status not in JOB_STATES:
            continue
        entry = table.setdefault(
            job_id, {"status": "pending", "attempts": 0})
        entry["status"] = status
        attempt = record.get("attempt")
        if isinstance(attempt, int):
            entry["attempts"] = max(entry["attempts"], attempt)
        if status == "failed":
            entry["attempts"] = max(
                entry["attempts"],
                attempt + 1 if isinstance(attempt, int) else
                entry["attempts"] + 1)
            entry["error"] = record.get("error")
            entry["failure_class"] = record.get("class")
        elif status == "done":
            entry["result_path"] = record.get("result")
            entry["state_sha"] = record.get("sha")
            entry["steps"] = record.get("steps")
            entry["time"] = record.get("time")
        elif status == "quarantined":
            entry["error"] = record.get("error", entry.get("error"))
    return table
