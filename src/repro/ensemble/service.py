"""Durable, crash-tolerant ensemble job service.

:class:`EnsembleService` wraps the batched engine
(:class:`~repro.ensemble.simulation.EnsembleSimulation`) in the
machinery a long campaign actually needs — the host-side analog of the
paper's checkpoint-restart discipline on 65k-device runs:

* **Write-ahead ledger** (:class:`~repro.ensemble.ledger.JobLedger`):
  every job transition is durably recorded *before* the service acts on
  it, so a killed ``python -m repro ensemble`` invocation resumes
  exactly where it left off — ``done`` jobs replay from their verified
  result snapshots, in-flight jobs restart from their newest per-job
  checkpoint, ``quarantined`` jobs stay quarantined.
* **Supervised batches**
  (:class:`~repro.ensemble.supervisor.BatchSupervisor`): each batch
  attempt runs in a child process watched through a shared-memory
  heartbeat; worker death and deadline expiry are *transient* failures,
  bad specs and exhausted divergences *permanent* — the
  :func:`repro.common.failure_class` taxonomy.
* **Bounded retry with exponential backoff, then quarantine**: each
  recorded failure consumes one of ``max_attempts``; a job that fails
  deterministically ``max_attempts`` times is quarantined (terminal)
  so a poison job can never wedge the campaign.  Batch-level permanent
  failures (a spec that cannot even build) quarantine immediately.
* **Graceful degradation**: repeated batch-level transient failures
  halve ``batch_width`` (down to ``min_batch_width``); fusion compile
  failures fall back to the NumPy backend, then to unfused kernels
  (the supervisor's ladder).  Every downgrade is a structured ledger
  event.

Bitwise contract
----------------
The engine guarantees each case advances bit-for-bit identically at
any batch width, and checkpoint restart is bitwise-exact — so however
a campaign is killed, corrupted, re-batched, or degraded, every
recoverable job's final state is **bit-identical to a fault-free run**.
The chaos suite asserts exactly that.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bc.boundary import BoundarySet
from repro.common import CheckpointError, ConfigurationError
from repro.io.binary import read_snapshot, write_snapshot
from repro.io.checkpoint import CheckpointManager
from repro.solver.resilience import RecoveryCounters
from repro.solver.rhs import RHSConfig

from repro.ensemble.ledger import LEDGER_VERSION, JobLedger, job_table
from repro.ensemble.runner import (
    EnsembleJob,
    batch_signature,
    plan_job_batches,
)
from repro.ensemble.simulation import EnsembleCaseResult
from repro.ensemble.supervisor import BatchSpec, BatchSupervisor

__all__ = ["EnsembleService", "JobOutcome", "ServiceReport"]

#: Exponential-backoff ceiling (seconds) between retries of one job.
BACKOFF_CAP_SECONDS = 30.0


@dataclass
class JobOutcome:
    """Terminal (or latest) state of one job, for the report."""

    job_id: str
    index: int
    name: str
    status: str
    attempts: int
    result: EnsembleCaseResult | None = None
    error: str | None = None


@dataclass
class ServiceReport:
    """What a service run accomplished, plus durability telemetry."""

    jobs: list[JobOutcome]
    resumed: bool
    executed_batches: int
    replayed_done: int
    batch_width_final: int
    ledger_skipped: int
    ledger_dropped_tail: int
    events: list[dict] = field(default_factory=list)
    recovery: RecoveryCounters = field(default_factory=RecoveryCounters)

    @property
    def results(self) -> list[EnsembleCaseResult | None]:
        return [j.result for j in self.jobs]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for j in self.jobs:
            out[j.status] = out.get(j.status, 0) + 1
        return out

    def summary(self) -> str:
        lines = [f"{'job':<12} {'name':<20} {'status':<12} {'attempts':>8} "
                 f"{'steps':>7} {'t_final':>12}"]
        for j in self.jobs:
            steps = j.result.steps if j.result is not None else "-"
            t = f"{j.result.time:.6g}" if j.result is not None else "-"
            lines.append(f"{j.job_id:<12} {j.name:<20} {j.status:<12} "
                         f"{j.attempts:>8} {steps!s:>7} {t:>12}")
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        lines.append(
            f"{'resumed' if self.resumed else 'fresh'} run: {counts}; "
            f"{self.executed_batches} batches executed, "
            f"{self.replayed_done} results replayed from the ledger")
        if self.ledger_skipped or self.ledger_dropped_tail:
            lines.append(
                f"ledger damage survived: {self.ledger_skipped} records "
                f"skipped (CRC), {self.ledger_dropped_tail} torn tail "
                f"lines dropped")
        if self.recovery.any():
            lines.append(self.recovery.summary())
        for event in self.events:
            if event.get("event") == "degrade":
                lines.append(f"degraded: {event.get('what')} -> "
                             f"{event.get('to')}")
        return "\n".join(lines)


class EnsembleService:
    """Crash-tolerant campaign driver over the batched ensemble engine.

    Parameters
    ----------
    jobs / bcs:
        As for :class:`~repro.ensemble.runner.EnsembleRunner`.
    ledger:
        Ledger file path (or a :class:`JobLedger`).  An existing ledger
        for the same spec resumes the campaign; one for a *different*
        spec is rejected.
    checkpoint_dir / results_dir:
        Where per-job restart checkpoints and final result snapshots
        live.  Defaults to siblings of the ledger file.
    batch_width:
        Initial stacked width; degradation may narrow it.
    max_attempts:
        Recorded failures a job may accumulate before quarantine.
    retry_base_seconds:
        Backoff base: retry ``a`` sleeps ``base * 2**(a-1)`` seconds
        (capped).  Zero disables sleeping (tests).
    deadline_seconds / wall_limit_seconds / supervise:
        Supervisor knobs (no-progress grace, hard per-attempt wall
        budget, child-process isolation on/off).
    checkpoint_every / checkpoint_keep:
        Per-case checkpoint cadence (stacked steps) inside batches.
    check_every:
        Validation cadence; defaults to 1 so a diverging case is
        caught on the step it breaks (and never checkpointed broken).
    degrade_after / min_batch_width:
        Halve the width after this many *consecutive* batch-level
        failures, never below the floor.
    chaos:
        Optional :class:`repro.faults.EnsembleChaosPlan` — deterministic
        fault schedule for the chaos suite.
    engine keyword arguments:
        ``config``, ``cfl``, ``rk_order``, ``fixed_dt``, ``threads``,
        ``tile_device``, ``sweep_layout``, ``fusion``, ``tuning``,
        ``tuning_cache`` — forwarded to every batch.
    """

    def __init__(self, jobs: list[EnsembleJob], bcs: BoundarySet, *,
                 ledger: str | Path | JobLedger,
                 checkpoint_dir: str | Path | None = None,
                 results_dir: str | Path | None = None,
                 batch_width: int = 8, max_attempts: int = 3,
                 retry_base_seconds: float = 0.5,
                 deadline_seconds: float = 60.0,
                 wall_limit_seconds: float | None = None,
                 supervise: bool = True,
                 checkpoint_every: int = 5, checkpoint_keep: int = 3,
                 check_every: int = 1,
                 degrade_after: int = 2, min_batch_width: int = 1,
                 chaos: object | None = None,
                 config: RHSConfig | None = None, cfl: float = 0.5,
                 rk_order: int = 3, fixed_dt: float | None = None,
                 threads: int = 1, tile_device: object | None = None,
                 sweep_layout: str = "strided", fusion: str = "off",
                 backend: object = None,
                 tuning: object = "off",
                 tuning_cache: object | None = None) -> None:
        if not jobs:
            raise ConfigurationError("ensemble service needs at least one job")
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if not isinstance(batch_width, int) or isinstance(batch_width, bool) \
                or batch_width < 1:
            raise ConfigurationError(
                f"batch_width must be a positive integer, got {batch_width!r}")
        if min_batch_width < 1 or min_batch_width > batch_width:
            raise ConfigurationError(
                f"min_batch_width must lie in [1, {batch_width}], "
                f"got {min_batch_width}")
        if degrade_after < 1:
            raise ConfigurationError(
                f"degrade_after must be >= 1, got {degrade_after}")
        self.jobs = list(jobs)
        self.bcs = bcs
        self.ledger = ledger if isinstance(ledger, JobLedger) \
            else JobLedger(ledger)
        base = self.ledger.path.parent
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir \
            else base / "checkpoints"
        self.results_dir = Path(results_dir) if results_dir \
            else base / "results"
        self.batch_width = batch_width
        self.max_attempts = max_attempts
        self.retry_base_seconds = retry_base_seconds
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.degrade_after = degrade_after
        self.min_batch_width = min_batch_width
        self.chaos = chaos
        self.config = config if config is not None else RHSConfig()
        from repro.backend import resolve_backend

        self.engine = dict(
            config=self.config, cfl=cfl, rk_order=rk_order,
            fixed_dt=fixed_dt, check_every=check_every, threads=threads,
            tile_device=tile_device, sweep_layout=sweep_layout,
            fusion=fusion,
            # Normalised to the name so the engine dict pickles into
            # supervised batch children (the child re-resolves it).
            backend=resolve_backend(backend).name,
            tuning=tuning, tuning_cache=tuning_cache)
        self.supervisor = BatchSupervisor(
            grace=deadline_seconds, wall_limit=wall_limit_seconds,
            supervise=supervise)
        #: Recovery tallies (checkpoint skips, restarts) across the run.
        self.recovery = RecoveryCounters()

        n = len(self.jobs)
        self._status = ["pending"] * n
        self._attempts = [0] * n
        self._errors: list[str | None] = [None] * n
        self._results: dict[int, EnsembleCaseResult] = {}
        self._events: list[dict] = []
        self._executed_batches = 0
        self._replayed_done = 0
        self._ledger_skipped = 0
        self._ledger_dropped = 0
        self._consecutive_failures = 0

    # ------------------------------------------------------------------
    def job_id(self, index: int) -> str:
        return f"job{index:04d}"

    def _job_name(self, index: int) -> str:
        return self.jobs[index].name or self.job_id(index)

    def spec_digest(self) -> str:
        """Digest binding a ledger to this exact job list."""
        h = hashlib.sha256()
        for job in self.jobs:
            h.update(batch_signature(job.case, self.config).encode())
            h.update(f"|{job.t_end!r}|{job.name}|".encode())
        return h.hexdigest()[:16]

    def _result_path(self, index: int) -> Path:
        return self.results_dir / f"{self.job_id(index)}.bin"

    def _checkpoints(self, index: int) -> CheckpointManager:
        return CheckpointManager(self.checkpoint_dir,
                                 keep=self.checkpoint_keep,
                                 prefix=self.job_id(index))

    @staticmethod
    def _state_sha(q: np.ndarray) -> str:
        return hashlib.sha256(np.ascontiguousarray(q).tobytes()) \
            .hexdigest()[:16]

    def _record_event(self, event: dict) -> None:
        self._events.append(event)
        self.ledger.append({"kind": "event", **event})

    # ------------------------------------------------------------------
    def _open_ledger(self) -> bool:
        """Replay (or create) the ledger; seed job states from it.

        Returns whether this run resumes an existing campaign.
        """
        digest = self.spec_digest()
        existed = self.ledger.exists()
        replay = self.ledger.replay()
        self._ledger_skipped = replay.skipped_records
        self._ledger_dropped = replay.dropped_tail
        opens = [r for r in replay.records if r.get("kind") == "open"]
        if opens and opens[0].get("digest") != digest:
            raise ConfigurationError(
                f"ledger {self.ledger.path} belongs to a different job "
                f"spec (digest {opens[0].get('digest')}, ours {digest}); "
                f"refusing to mix campaigns")
        if not existed:
            # Fresh campaign: stale snapshots from an older run of the
            # same directories must not masquerade as this run's state.
            for i in range(len(self.jobs)):
                self._result_path(i).unlink(missing_ok=True)
                for old in self._checkpoints(i).checkpoints():
                    old.unlink(missing_ok=True)
        if not opens:
            self.ledger.append({"kind": "open", "version": LEDGER_VERSION,
                                "digest": digest, "jobs": len(self.jobs)})
        if replay.damaged:
            self._record_event({
                "event": "ledger-damage",
                "skipped_records": replay.skipped_records,
                "dropped_tail": replay.dropped_tail})
        table = job_table(replay.records)
        for i in range(len(self.jobs)):
            entry = table.get(self.job_id(i))
            if entry is None:
                continue
            self._attempts[i] = entry["attempts"]
            self._errors[i] = entry.get("error")
            status = entry["status"]
            if status == "done":
                if self._replay_done(i, entry):
                    continue
                status = "pending"  # result lost; redo the work
            if status == "quarantined":
                self._status[i] = "quarantined"
            elif status == "failed":
                self._status[i] = "failed"
            else:
                # "running": the previous service died mid-batch.  No
                # failure was recorded, so resuming costs no attempt.
                self._status[i] = "pending"
        return existed

    def _replay_done(self, index: int, entry: dict) -> bool:
        """Reload a finished job's verified result snapshot."""
        path = self._result_path(index)
        try:
            header, q = read_snapshot(path)
        except (OSError, CheckpointError) as err:
            self._record_event({
                "event": "result-lost", "job": self.job_id(index),
                "detail": str(err)})
            return False
        sha = entry.get("state_sha")
        if sha is not None and sha != self._state_sha(q):
            self._record_event({
                "event": "result-lost", "job": self.job_id(index),
                "detail": "result snapshot digest mismatch"})
            return False
        self._results[index] = EnsembleCaseResult(
            index=index, name=self._job_name(index), q=q,
            time=header.time, steps=header.step, wall_seconds=0.0,
            grind_time_ns=None, status="done")
        self._status[index] = "done"
        self._replayed_done += 1
        return True

    # ------------------------------------------------------------------
    def run(self) -> ServiceReport:
        """Drive every job to ``done`` or ``quarantined``; report."""
        resumed = self._open_ledger()
        while True:
            self._quarantine_exhausted()
            runnable = [i for i in range(len(self.jobs))
                        if self._status[i] in ("pending", "failed")]
            if not runnable:
                break
            plan = plan_job_batches([self.jobs[i] for i in runnable],
                                    self.config, self.batch_width)
            for _sig, locals_ in plan:
                indices = [runnable[li] for li in locals_]
                # A job may have finished/quarantined in an earlier
                # batch of this round? No — batches partition runnable.
                self._run_batch(indices)
        return self._report(resumed)

    def _quarantine_exhausted(self) -> None:
        for i in range(len(self.jobs)):
            if self._status[i] in ("pending", "failed") \
                    and self._attempts[i] >= self.max_attempts:
                self._quarantine(i, self._errors[i]
                                 or "attempt budget exhausted")

    def _quarantine(self, index: int, error: str | None) -> None:
        self.ledger.append({
            "kind": "job", "id": self.job_id(index),
            "status": "quarantined", "attempt": self._attempts[index],
            "error": error})
        self._status[index] = "quarantined"
        self._errors[index] = error

    # ------------------------------------------------------------------
    def _backoff(self, indices: list[int]) -> None:
        attempt = max(self._attempts[i] for i in indices)
        if attempt < 1 or self.retry_base_seconds <= 0:
            return
        time.sleep(min(self.retry_base_seconds * 2 ** (attempt - 1),
                       BACKOFF_CAP_SECONDS))

    def _restart_seeds(self, indices: list[int]):
        """Newest valid per-job checkpoint state/time/step (or fresh)."""
        states, times, steps = [], [], []
        for i in indices:
            mgr = self._checkpoints(i)
            job = self.jobs[i]
            expect = (job.case.layout.nvars, *job.case.grid.shape)
            try:
                _path, header, q = mgr.load_latest(expect_shape=expect)
            except CheckpointError:
                states.append(None)
                times.append(0.0)
                steps.append(0)
            else:
                states.append(q)
                times.append(header.time)
                steps.append(header.step)
                self.recovery.restarts += 1
            self.recovery.record_checkpoint_skips(mgr)
            for event in mgr.events:
                self._record_event({
                    "event": "checkpoint-skip", "job": self.job_id(i),
                    "checkpoint": event["checkpoint"],
                    "reason": event["reason"]})
        return states, times, steps

    def _run_batch(self, indices: list[int]) -> None:
        """One supervised attempt of one batch of jobs."""
        self._backoff(indices)
        for i in indices:
            self.ledger.append({
                "kind": "job", "id": self.job_id(i), "status": "running",
                "attempt": self._attempts[i]})
        states, times, steps = self._restart_seeds(indices)
        fault_plans = {}
        step_callback = None
        if self.chaos is not None:
            plans = self.chaos.fault_plans(indices)
            fault_plans = {local: plans[g]
                           for local, g in enumerate(indices) if g in plans}
            kill_for = self.chaos.kill_job
            kill_attempt = (self._attempts[kill_for]
                            if kill_for is not None and kill_for in indices
                            else min(self._attempts[i] for i in indices))
            step_callback = self.chaos.make_kill_callback(
                indices, kill_attempt)
        spec = BatchSpec(
            cases=[self.jobs[i].case for i in indices],
            t_ends=[self.jobs[i].t_end for i in indices],
            names=[self._job_name(i) for i in indices],
            bcs=self.bcs, engine=dict(self.engine),
            initial_states=states, initial_times=times,
            initial_steps=steps,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_every=self.checkpoint_every,
            checkpoint_keep=self.checkpoint_keep,
            checkpoint_prefixes=[self.job_id(i) for i in indices],
            fault_plans=fault_plans,
            attempt=max(self._attempts[i] for i in indices),
            step_callback=step_callback)
        outcome = self.supervisor.run(spec)
        self._executed_batches += 1
        if outcome.get("ok"):
            self._consecutive_failures = 0
            for event in outcome.get("events", []):
                self._record_event({"event": "degrade", **{
                    k: v for k, v in event.items() if k != "kind"}})
                self._apply_degradation(event)
            for result in outcome["results"]:
                self._finish_job(indices[result.index], result)
            return
        error = outcome["error"]
        self._record_event({
            "event": "batch-failed",
            "jobs": [self.job_id(i) for i in indices],
            "type": error["type"], "class": error["class"],
            "message": error["message"]})
        if error["class"] == "permanent":
            # A batch that cannot even build will never build: spend no
            # retries reproducing a deterministic rejection.
            for i in indices:
                self._quarantine(i, f"{error['type']}: {error['message']}")
            return
        for i in indices:
            self._record_failure(i, error["type"], error["message"],
                                 "transient")
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.degrade_after \
                and self.batch_width > self.min_batch_width:
            self.batch_width = max(self.min_batch_width,
                                   self.batch_width // 2)
            self._consecutive_failures = 0
            self._record_event({
                "event": "degrade", "what": "batch-width",
                "to": self.batch_width,
                "error": f"{self.degrade_after} consecutive batch "
                         f"failures"})

    def _apply_degradation(self, event: dict) -> None:
        """Make a child-reported downgrade sticky for later batches."""
        from repro.acc.fusion import BACKEND_ENV_VAR

        if event.get("what") == "fusion":
            self.engine["fusion"] = "off"
        elif event.get("what") == "fusion-backend":
            os.environ[BACKEND_ENV_VAR] = "numpy"

    def _record_failure(self, index: int, error_type: str, message: str,
                        failure_cls: str) -> None:
        self.ledger.append({
            "kind": "job", "id": self.job_id(index), "status": "failed",
            "attempt": self._attempts[index], "class": failure_cls,
            "type": error_type, "error": message})
        self._attempts[index] += 1
        self._errors[index] = message
        self._status[index] = "failed"

    def _finish_job(self, index: int, result: EnsembleCaseResult) -> None:
        if result.status == "failed":
            # Case-level divergence: the engine retired it, batch
            # neighbours finished.  Deterministic, so it counts toward
            # quarantine — but checkpoints may let a *transient* NaN
            # (chaos attempts=1) heal on retry, so it gets its budget.
            self._record_failure(index, "NumericsError",
                                 result.error or "diverged", "permanent")
            return
        path = self._result_path(index)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        write_snapshot(path, result.q, step=result.steps, time=result.time)
        self.ledger.append({
            "kind": "job", "id": self.job_id(index), "status": "done",
            "attempt": self._attempts[index], "result": path.name,
            "sha": self._state_sha(result.q), "steps": result.steps,
            "time": result.time})
        self._status[index] = "done"
        self._results[index] = EnsembleCaseResult(
            index=index, name=result.name, q=result.q, time=result.time,
            steps=result.steps, wall_seconds=result.wall_seconds,
            grind_time_ns=result.grind_time_ns, status="done")
        # Restart seeds are dead weight once the result is durable.
        for old in self._checkpoints(index).checkpoints():
            old.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def _report(self, resumed: bool) -> ServiceReport:
        jobs = []
        for i in range(len(self.jobs)):
            jobs.append(JobOutcome(
                job_id=self.job_id(i), index=i, name=self._job_name(i),
                status=self._status[i], attempts=self._attempts[i],
                result=self._results.get(i), error=self._errors[i]))
        return ServiceReport(
            jobs=jobs, resumed=resumed,
            executed_batches=self._executed_batches,
            replayed_done=self._replayed_done,
            batch_width_final=self.batch_width,
            ledger_skipped=self._ledger_skipped,
            ledger_dropped_tail=self._ledger_dropped,
            events=list(self._events), recovery=self.recovery)
