"""Ensemble scheduler: group compatible jobs into stacked batches.

:class:`EnsembleRunner` takes an arbitrary list of jobs (case +
horizon), groups them by *batch signature* — grid face coordinates,
mixture, and RHS configuration, i.e. everything a stacked RHS must
share — and marches each group through
:class:`~repro.ensemble.simulation.EnsembleSimulation` in chunks of at
most ``batch_width`` cases.  Jobs whose signatures differ fall into
separate batches automatically, so a heterogeneous campaign still runs
correctly (just with less amortisation).

With ``tuning="auto"`` and a shared cache file, the first batch of a
signature pays the tuning cost and every same-shape, same-width batch
after it replays the cached plan with **zero timing runs** — the PR-5
cache keyed by the batched case signature.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.bc.boundary import BoundarySet
from repro.common import ConfigurationError, Stopwatch
from repro.solver.case import Case
from repro.solver.rhs import RHSConfig

from repro.ensemble.simulation import EnsembleCaseResult, EnsembleSimulation


@dataclass(frozen=True)
class EnsembleJob:
    """One case to march to ``t_end``, with an optional display name."""

    case: Case
    t_end: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.t_end < 0.0:
            raise ConfigurationError(
                f"job t_end must be non-negative, got {self.t_end}")


@dataclass
class BatchRecord:
    """Telemetry of one stacked batch the runner executed."""

    signature: str
    width: int
    job_indices: list[int]
    steps: int
    retire_events: int
    wall_seconds: float
    grind_time_ns: float | None
    tuning_summary: str | None = None
    timing_runs: int = 0


@dataclass
class EnsembleReport:
    """Results (in job order) plus per-batch telemetry."""

    results: list[EnsembleCaseResult]
    batches: list[BatchRecord] = field(default_factory=list)

    @property
    def total_wall_seconds(self) -> float:
        return sum(b.wall_seconds for b in self.batches)

    def summary(self) -> str:
        """Human-readable per-case table plus batch amortisation lines."""
        lines = [f"{'case':<24} {'steps':>7} {'t_final':>12} "
                 f"{'grind ns/cell/PDE/RHS':>22}"]
        for r in self.results:
            grind = f"{r.grind_time_ns:.2f}" if r.grind_time_ns else "-"
            lines.append(f"{r.name:<24} {r.steps:>7} {r.time:>12.6g} "
                         f"{grind:>22}")
        for i, b in enumerate(self.batches):
            grind = (f"{b.grind_time_ns:.2f} ns/cell/PDE/RHS"
                     if b.grind_time_ns else "no steps")
            lines.append(
                f"batch {i}: width={b.width} steps={b.steps} "
                f"retires={b.retire_events} {grind}")
            if b.tuning_summary:
                lines.append(f"  {b.tuning_summary} "
                             f"[{b.timing_runs} timing runs]")
        return "\n".join(lines)


def batch_signature(case: Case, config: RHSConfig) -> str:
    """What a stacked RHS must share: grid faces, mixture, RHS config.

    A short sha256 digest — jobs with equal signatures can ride the
    same batch; anything else (different resolution, stretched axis,
    EOS, order, or solver) lands in its own.
    """
    h = hashlib.sha256()
    for f in case.grid.faces:
        h.update(np.ascontiguousarray(f).tobytes())
        h.update(b"|")
    h.update(repr(case.mixture).encode())
    h.update(repr(config).encode())
    return h.hexdigest()[:16]


def plan_job_batches(jobs: list[EnsembleJob], config: RHSConfig,
                     batch_width: int) -> list[tuple[str, list[int]]]:
    """Group job indices by signature, chunked to ``batch_width``.

    Order is deterministic: signatures appear in first-seen order,
    jobs within a signature in submission order.  Shared by the
    in-memory runner and the durable service (which re-plans over the
    *unfinished* jobs on every scheduling round).
    """
    if not isinstance(batch_width, int) or isinstance(batch_width, bool) \
            or batch_width < 1:
        raise ConfigurationError(
            f"batch_width must be a positive integer, got {batch_width!r}")
    groups: dict[str, list[int]] = {}
    for i, job in enumerate(jobs):
        sig = batch_signature(job.case, config)
        groups.setdefault(sig, []).append(i)
    chunks: list[tuple[str, list[int]]] = []
    for sig, indices in groups.items():
        for lo in range(0, len(indices), batch_width):
            chunks.append((sig, indices[lo:lo + batch_width]))
    return chunks


class EnsembleRunner:
    """Batches compatible jobs and runs them through stacked drivers.

    Parameters mirror :class:`EnsembleSimulation`; ``batch_width`` caps
    how many cases one stacked driver carries (grouped first-come
    first-served within a signature, so results are deterministic in
    job order).
    """

    def __init__(self, jobs: list[EnsembleJob], bcs: BoundarySet, *,
                 batch_width: int = 8, config: RHSConfig | None = None,
                 cfl: float = 0.5, rk_order: int = 3,
                 fixed_dt: float | None = None, check_every: int = 10,
                 threads: int = 1, tile_device: object | None = None,
                 sweep_layout: str = "strided", fusion: str = "off",
                 backend: object = None,
                 tuning: object = "off",
                 tuning_cache: object | None = None,
                 stopwatch: Stopwatch | None = None) -> None:
        if not jobs:
            raise ConfigurationError("ensemble runner needs at least one job")
        if not isinstance(batch_width, int) or isinstance(batch_width, bool) \
                or batch_width < 1:
            raise ConfigurationError(
                f"batch_width must be a positive integer, got {batch_width!r}")
        self.jobs = list(jobs)
        self.bcs = bcs
        self.batch_width = batch_width
        self.config = config if config is not None else RHSConfig()
        self.kwargs = dict(
            config=self.config, cfl=cfl, rk_order=rk_order,
            fixed_dt=fixed_dt, check_every=check_every, threads=threads,
            tile_device=tile_device, sweep_layout=sweep_layout,
            fusion=fusion, backend=backend,
            tuning=tuning, tuning_cache=tuning_cache)
        self.stopwatch = stopwatch if stopwatch is not None else Stopwatch()

    # ------------------------------------------------------------------
    def plan_batches(self) -> list[tuple[str, list[int]]]:
        """Group job indices by signature, chunked to ``batch_width``.

        Order is deterministic: signatures appear in first-seen order,
        jobs within a signature in submission order.
        """
        return plan_job_batches(self.jobs, self.config, self.batch_width)

    def run(self) -> EnsembleReport:
        """Execute every batch; results return in job-submission order."""
        results: dict[int, EnsembleCaseResult] = {}
        batches: list[BatchRecord] = []
        for sig, indices in self.plan_batches():
            sim = EnsembleSimulation(
                [self.jobs[i].case for i in indices], self.bcs,
                names=[self.jobs[i].name or f"job{i}" for i in indices],
                stopwatch=self.stopwatch, **self.kwargs)
            batch_results = sim.run(
                t_end=[self.jobs[i].t_end for i in indices])
            for local, res in enumerate(batch_results):
                results[indices[local]] = res
            plan = sim.tuning_plan
            batches.append(BatchRecord(
                signature=sig, width=len(indices),
                job_indices=list(indices), steps=sim.step_count,
                retire_events=sim.retire_events,
                wall_seconds=sim.wall_seconds_total,
                grind_time_ns=(sim.grind_time_ns()
                               if sim.case_steps_total else None),
                tuning_summary=plan.summary() if plan is not None else None,
                timing_runs=(sim.tuner.timing_runs
                             if sim.tuner is not None else 0)))
            if sim.rhs is not None and sim.rhs.executor is not None:
                sim.rhs.executor.shutdown()
        ordered = [results[i] for i in range(len(self.jobs))]
        return EnsembleReport(results=ordered, batches=batches)
