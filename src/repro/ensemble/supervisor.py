"""Supervised execution of one ensemble batch in a child process.

The durable service never runs a batch in its own process when it can
help it: a SIGKILL'd worker, a hung backend, or a hard crash must cost
*one batch attempt*, not the service (and its ledger writer).  The
:class:`BatchSupervisor` forks one child per batch, watches it through
a shared-memory heartbeat word (bumped every stacked step) with the
same drain-while-join loop the multi-process cluster uses
(:func:`repro.cluster.procs.drain_and_join`), and classifies whatever
comes back through the :func:`repro.common.failure_class` taxonomy:

* child exits nonzero / killed by a signal / exits silently →
  :class:`~repro.common.WorkerDiedError` (**transient**);
* no heartbeat, result, or exit within the grace window, or the batch
  blows its wall-clock budget → :class:`~repro.common.DeadlineError`
  (**transient**);
* the child reports a structured failure (bad spec, divergence) → the
  original error's own class (**permanent** for
  ``ConfigurationError``/``NumericsError``).

Inside the child, :func:`execute_batch` owns the **degradation
ladder** for fusion compile failures: a broken
``REPRO_FUSION_BACKEND`` first falls back to the pure-NumPy backend,
then to ``fusion="off"`` — each rung logged as a structured event.
Both runs stay bitwise-identical to the original plan (fusion and its
backends are bitwise-equivalent execution choices), so degradation
trades speed, never answers.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.bc.boundary import BoundarySet
from repro.common import ConfigurationError, ReproError, failure_class
from repro.cluster.procs import drain_and_join
from repro.solver.case import Case

from repro.ensemble.simulation import EnsembleSimulation

__all__ = ["BatchSpec", "BatchSupervisor", "execute_batch"]


@dataclass
class BatchSpec:
    """Everything one batch attempt needs (fork-inherited, not pickled).

    ``fault_plans`` and the restart seeds are keyed/ordered by the
    batch-local case position (0..B-1); the service translates from
    its global job indices.  ``t_ends`` are absolute horizons — a
    restarted case resumes its unbroken clock and marches to the same
    instant it always would have.
    """

    cases: list[Case]
    t_ends: list[float]
    names: list[str]
    bcs: BoundarySet
    #: EnsembleSimulation engine kwargs (config, cfl, rk_order,
    #: fixed_dt, check_every, threads, sweep_layout, fusion, ...).
    engine: dict = field(default_factory=dict)
    initial_states: list | None = None
    initial_times: list | None = None
    initial_steps: list | None = None
    checkpoint_dir: object | None = None
    checkpoint_every: int = 0
    checkpoint_keep: int = 3
    checkpoint_prefixes: list[str] | None = None
    fault_plans: dict = field(default_factory=dict)
    #: Attempt number (0-based) — fault plans use it to relent or not,
    #: chaos kill switches arm only on attempt 0.
    attempt: int = 0
    #: Optional chaos hook called after every stacked step.
    step_callback: object | None = None


def execute_batch(spec: BatchSpec, *, on_step=None) -> dict:
    """Run one batch to its horizons; returns results + events.

    Builds the :class:`EnsembleSimulation` in ``on_failure="retire"``
    mode (a diverging case retires with a named diagnostic instead of
    aborting its batch neighbours) and applies the fusion degradation
    ladder when construction fails on a fusion/backend error:

    1. pin ``REPRO_FUSION_BACKEND=numpy`` (compile failures of the
       optional numexpr/numba backends), rebuild;
    2. rebuild with ``fusion="off"`` entirely.

    A build that still fails with fusion off propagates — that is a
    genuinely bad spec, and the taxonomy calls it permanent.
    """
    from repro.acc.fusion import BACKEND_ENV_VAR, FusionError

    engine = dict(spec.engine)
    events: list[dict] = []

    def on_every_step(sim) -> None:
        if on_step is not None:
            on_step(sim)
        if spec.step_callback is not None:
            spec.step_callback(sim)

    def build() -> EnsembleSimulation:
        return EnsembleSimulation(
            spec.cases, spec.bcs, names=spec.names,
            initial_states=spec.initial_states,
            initial_times=spec.initial_times,
            initial_steps=spec.initial_steps,
            on_failure="retire",
            checkpoint_dir=spec.checkpoint_dir,
            checkpoint_every=spec.checkpoint_every,
            checkpoint_keep=spec.checkpoint_keep,
            checkpoint_prefixes=spec.checkpoint_prefixes,
            fault_plans=spec.fault_plans,
            fault_attempt=spec.attempt,
            step_callback=on_every_step, **engine)

    try:
        sim = build()
    except (FusionError, ConfigurationError) as err:
        if engine.get("fusion", "off") == "off":
            raise
        saved = os.environ.get(BACKEND_ENV_VAR)
        os.environ[BACKEND_ENV_VAR] = "numpy"
        try:
            try:
                sim = build()
                events.append({
                    "kind": "degrade", "what": "fusion-backend",
                    "to": "numpy", "error": str(err)})
            except (FusionError, ConfigurationError) as err2:
                engine["fusion"] = "off"
                sim = build()
                events.append({
                    "kind": "degrade", "what": "fusion", "to": "off",
                    "error": str(err2)})
        finally:
            if saved is None:
                os.environ.pop(BACKEND_ENV_VAR, None)
            else:
                os.environ[BACKEND_ENV_VAR] = saved
    try:
        results = sim.run(t_end=spec.t_ends)
    finally:
        if sim.rhs is not None and sim.rhs.executor is not None:
            sim.rhs.executor.shutdown()
    return {
        "results": results,
        "events": events,
        "telemetry": {
            "steps": sim.step_count,
            "retire_events": sim.retire_events,
            "wall_seconds": sim.wall_seconds_total,
            "faults_injected": sim.faults_injected,
            "checkpoints_written": sim.checkpoints_written,
            "fusion": engine.get("fusion", "off"),
        },
    }


def _batch_worker(spec: BatchSpec, shm, conn) -> None:
    """Child body: execute, report, die quietly.

    Structured failures (anything in the :class:`ReproError` family)
    are *reported* over the pipe and the child exits 0 — the parent
    owns classification and retry policy.  Unstructured crashes exit
    nonzero and become :class:`~repro.common.WorkerDiedError`.
    """
    try:
        beat = np.ndarray((1,), dtype=np.int64, buffer=shm.buf)

        def on_step(sim) -> None:
            beat[0] += 1

        try:
            payload = execute_batch(spec, on_step=on_step)
            conn.send({"ok": True, **payload})
        except ReproError as err:
            conn.send({"ok": False, "type": type(err).__name__,
                       "message": str(err), "class": failure_class(err)})
        conn.close()
    except BaseException:
        traceback.print_exc(file=sys.stderr)
        os._exit(1)


def _signal_name(exitcode: int) -> str:
    if exitcode >= 0:
        return f"exit code {exitcode}"
    try:
        return f"signal {signal.Signals(-exitcode).name}"
    except ValueError:
        return f"signal {-exitcode}"


class BatchSupervisor:
    """Runs batches in supervised children; classifies their failures.

    Parameters
    ----------
    grace:
        No-progress window in seconds — re-armed on every heartbeat,
        so it bounds a *stall*, not a long batch.
    wall_limit:
        Optional hard wall-clock budget per batch attempt.
    supervise:
        ``False`` runs the batch in-process (no SIGKILL protection —
        for fast unit tests and debugging).
    """

    def __init__(self, *, grace: float = 60.0,
                 wall_limit: float | None = None,
                 supervise: bool = True) -> None:
        if grace <= 0:
            raise ConfigurationError(f"grace must be positive, got {grace}")
        self.grace = grace
        self.wall_limit = wall_limit
        self.supervise = supervise

    # ------------------------------------------------------------------
    def run(self, spec: BatchSpec) -> dict:
        """One batch attempt → outcome dict.

        ``{"ok": True, "results": [...], "events": [...],
        "telemetry": {...}}`` on success;
        ``{"ok": False, "error": {"type", "message", "class"}}`` on
        failure, with the error already classified for the retry
        policy.
        """
        if not self.supervise:
            return self._run_inline(spec)
        ctx = multiprocessing.get_context("fork")
        shm = shared_memory.SharedMemory(create=True, size=8)
        try:
            self._reset_beat(shm)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_batch_worker,
                               args=(spec, shm, child_conn), daemon=True)
            proc.start()
            child_conn.close()
            try:
                message, failed = self._drain(proc, parent_conn, shm)
            finally:
                parent_conn.close()
        finally:
            shm.close()
            shm.unlink()
        if failed is not None:
            index, code = failed
            if index < 0:
                kind = ("no-progress deadline"
                        if code == -1 else "wall-clock deadline")
                return self._failure("DeadlineError",
                                     f"batch worker hit its {kind} "
                                     f"(grace {self.grace:.0f}s)")
            return self._failure(
                "WorkerDiedError",
                f"batch worker died ({_signal_name(code)}) without a result"
                if code != 0 else
                "batch worker exited cleanly without reporting a result")
        if message.get("ok"):
            return message
        return {"ok": False, "error": {
            "type": message.get("type", "ReproError"),
            "message": message.get("message", ""),
            "class": message.get("class", "transient")}}

    def _drain(self, proc, conn, shm):
        """Join the child with heartbeat liveness; view scoped here so
        the shared segment can be closed afterwards."""
        beat = self._beat_view(shm)
        wall_deadline = (time.monotonic() + self.wall_limit
                         if self.wall_limit is not None else None)
        results, failed = drain_and_join(
            [proc], [conn], beat, self.grace, wall_deadline=wall_deadline)
        message = results[0] if results else None
        return message, failed

    def _run_inline(self, spec: BatchSpec) -> dict:
        """Unsupervised fallback: same outcome shape, no child process."""
        try:
            return {"ok": True, **execute_batch(spec)}
        except ReproError as err:
            return {"ok": False, "error": {
                "type": type(err).__name__, "message": str(err),
                "class": failure_class(err)}}

    # ------------------------------------------------------------------
    @staticmethod
    def _beat_view(shm) -> np.ndarray:
        return np.ndarray((1,), dtype=np.int64, buffer=shm.buf)

    @staticmethod
    def _reset_beat(shm) -> None:
        np.ndarray((1,), dtype=np.int64, buffer=shm.buf)[0] = 0

    @staticmethod
    def _failure(error_type: str, message: str) -> dict:
        return {"ok": False, "error": {
            "type": error_type, "message": message, "class": "transient"}}
