"""Batched ensemble driver: one stacked RHS advances N cases at once.

:class:`EnsembleSimulation` is the batch analog of
:class:`repro.solver.simulation.Simulation`: the conservative states of
``B`` same-shape cases are stacked into one ``(nvars, B, *grid)`` block
(:class:`~repro.ensemble.state.EnsembleState`) and every step performs
ONE shared ``cons_to_prim``, ONE batch-vectorised CFL reduction giving
a per-case dt vector, and ONE stacked SSP-RK step whose RHS sweeps the
batch axis as a leading virtual direction.  Amortising the Python/
dispatch overhead of the pipeline across the batch is exactly the
paper's GPU-occupancy argument run host-side: small per-case grids
cannot saturate the machine alone, a stacked block can.

Bitwise contract
----------------
Every case in the batch advances **bit-for-bit identically** to the
same case marched by a standalone :class:`Simulation` with the same
configuration.  The driver mirrors the standalone step exactly: shared
``cons_to_prim`` into the workspace under the ``"other"`` stopwatch
lap, per-case dt (``fixed_dt`` or the CFL bound — the vectorised
reduction of :func:`repro.timestepping.cfl.cfl_dts` replays the scalar
arithmetic per case), the final-step clip against the horizon, and the
``check_every`` validation cadence.

Ragged completion
-----------------
Cases may have different horizons.  When a case reaches its ``t_end``
it *retires*: its final state is copied out, and the survivors are
re-packed into a narrower contiguous batch (retire-and-compact).  The
stacked RHS is rebuilt at the new width — compaction copies survivor
states bitwise and every RHS width is bitwise-identical per case, so
survivors are unperturbed by their neighbours' retirement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import resolve_backend, to_host_array
from repro.bc.boundary import BoundarySet
from repro.common import (
    DTYPE,
    ConfigurationError,
    NumericsError,
    Stopwatch,
    WallTimer,
)
from repro.solver.case import Case
from repro.solver.resilience import check_state
from repro.solver.rhs import RHS, RHSConfig
from repro.solver.sweep import validate_fusion
from repro.state.conversions import cons_to_prim
from repro.timestepping.cfl import cfl_dts
from repro.timestepping.ssp_rk import SSP_SCHEMES, ssp_rk_step

from repro.ensemble.state import EnsembleState


@dataclass(frozen=True)
class EnsembleCaseResult:
    """Final state and telemetry of one ensemble case.

    ``wall_seconds`` is the case's share of the batch wall time (each
    stacked step's wall is split evenly across the cases it advanced);
    ``grind_time_ns`` is the per-case amortised grind — nanoseconds per
    cell per PDE per RHS evaluation, the paper's metric — computed from
    that share.

    ``status`` is ``"done"`` for a case that reached its horizon and
    ``"failed"`` for one retired by ``on_failure="retire"`` after its
    state went unphysical; ``error`` carries the diagnostic (naming
    the case) in the failed case.
    """

    index: int
    name: str
    q: np.ndarray
    time: float
    steps: int
    wall_seconds: float
    grind_time_ns: float | None
    status: str = "done"
    error: str | None = None


class EnsembleSimulation:
    """Time-marches ``B`` same-shape cases through one stacked RHS.

    Parameters mirror the single-case :class:`Simulation` driver where
    they apply; resilience features (retry, checkpoints, fault
    injection, multi-process ranks) are single-case concerns and are
    deliberately absent — an ensemble member needing them should run
    standalone.

    Parameters
    ----------
    cases:
        Same-grid, same-mixture cases to stack (initial conditions may
        differ).
    bcs:
        Physical boundary conditions, shared by every case.
    tuning:
        ``"off"``, ``"auto"``, a :class:`~repro.tuning.TuningPlan`, or
        a plan dict — as in :class:`Simulation`, except an ``"auto"``
        plan is keyed by the *batched* case signature (batch width
        included), so a stacked plan never reuses or poisons a
        single-case cache entry.
    names:
        Optional per-case labels carried into the results.
    initial_states / initial_times / initial_steps:
        Per-case restart seeds (state, absolute time, absolute step) —
        how the durable service re-forms a batch from each case's
        newest checkpoint.  A restarted case advances bit-for-bit as
        if it had never stopped (checkpoint restart is bitwise-exact
        and batch neighbours never perturb a case).
    on_failure:
        ``"raise"`` (default) aborts the batch on the first unphysical
        case, as before.  ``"retire"`` instead retires *only* the
        failing case — its result carries ``status="failed"`` and a
        diagnostic naming it — and lets the survivors keep marching.
    checkpoint_every / checkpoint_dir / checkpoint_keep /
    checkpoint_prefixes:
        Per-case rotating checkpoints: every ``checkpoint_every``
        stacked steps each healthy active case is snapshotted under
        its own prefix (default ``case<index>``) via
        :class:`~repro.io.checkpoint.CheckpointManager`, stamped with
        its absolute per-case step and time.
    fault_plans:
        ``{original case index: CellFaultPlan}`` — seeded corruption
        applied to that case's post-step state on its absolute step
        clock (chaos testing).
    fault_attempt:
        The attempt number handed to the fault plans (a transient
        plan relents on the retry attempt, a poison plan never does).
    step_callback:
        Called with the simulation after every stacked step —
        supervisor heartbeats and chaos kill switches hook in here.
    """

    def __init__(self, cases: list[Case], bcs: BoundarySet, *,
                 config: RHSConfig | None = None, cfl: float = 0.5,
                 rk_order: int = 3, fixed_dt: float | None = None,
                 check_every: int = 10, stopwatch: Stopwatch | None = None,
                 threads: int = 1, tile_device: object | None = None,
                 sweep_layout: str = "strided", fusion: str = "off",
                 backend: object = None,
                 tuning: object = "off",
                 tuning_cache: object | None = None,
                 names: list[str] | None = None,
                 initial_states: list | None = None,
                 initial_times: list | None = None,
                 initial_steps: list | None = None,
                 on_failure: str = "raise",
                 checkpoint_every: int = 0,
                 checkpoint_dir: object | None = None,
                 checkpoint_keep: int = 3,
                 checkpoint_prefixes: list[str] | None = None,
                 fault_plans: dict | None = None,
                 fault_attempt: int = 0,
                 step_callback: object | None = None) -> None:
        if rk_order not in SSP_SCHEMES:
            raise ConfigurationError(f"unsupported RK order {rk_order}")
        validate_fusion(fusion)
        if check_every < 0:
            raise ConfigurationError(
                f"check_every must be >= 0, got {check_every}")
        if on_failure not in ("raise", "retire"):
            raise ConfigurationError(
                f"on_failure must be 'raise' or 'retire', got {on_failure!r}")
        if checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}")
        if checkpoint_every and checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir")
        self.state = EnsembleState.from_cases(cases, initial=initial_states)
        self.layout = self.state.layout
        self.mixture = self.state.mixture
        self.grid = self.state.grid
        self.config = config if config is not None else RHSConfig()
        self.bcs = bcs
        self.cfl = cfl
        self.rk_order = rk_order
        self.fixed_dt = fixed_dt
        self.check_every = check_every
        self.stopwatch = stopwatch if stopwatch is not None else Stopwatch()
        self.threads = threads
        self.tile_device = tile_device
        self.sweep_layout = sweep_layout
        self.fusion = fusion
        #: Execution backend for the stacked march.  The per-case
        #: bookkeeping (views, fault plans, checkpoints, retirement)
        #: stays on the host; ``step`` moves the stacked block through
        #: the H2D/D2H seam around each RK step — an identity on the
        #: host backends, so the NumPy default is bitwise unchanged.
        self.backend = resolve_backend(backend)
        self.tuning = tuning
        self.tuning_cache = tuning_cache
        B = self.state.batch
        if names is None:
            names = [f"case{i}" for i in range(B)]
        if len(names) != B:
            raise ConfigurationError(
                f"{len(names)} names for {B} cases")
        self.names = list(names)
        #: Initial batch width (the tuning-signature width; retirement
        #: narrows :attr:`batch` but never re-tunes).
        self.batch0 = B

        #: Resolved plan / tuner, as in the single-case driver.
        self.tuning_plan = None
        self.tuner = None
        self._resolve_tuning()
        plan = self.tuning_plan
        if plan is not None:
            self.threads = plan.threads
            self.sweep_layout = plan.sweep_layout
            self.fusion = plan.fusion
        self.rhs = self._build_rhs(B)

        def _clock(values, dtype):
            if values is None:
                return np.zeros(B, dtype=dtype)
            vec = np.asarray(values, dtype=dtype)
            if vec.shape != (B,):
                raise ConfigurationError(
                    f"restart clock needs one entry per case; got shape "
                    f"{vec.shape} for {B} cases")
            return vec.copy()

        # Per-slot clocks, aligned with state.case_index.  Restarted
        # cases carry their absolute time/step so horizons, fault
        # plans, and checkpoint stamps all see the unbroken clock.
        self.time = _clock(initial_times, DTYPE)
        self.steps = _clock(initial_steps, np.int64)
        #: Steps already on the clock at construction (excluded from
        #: this run's grind accounting).
        self.steps0 = self.steps.copy()
        self.wall = np.zeros(B, dtype=np.float64)
        self.on_failure = on_failure
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_keep = checkpoint_keep
        if checkpoint_prefixes is None:
            checkpoint_prefixes = [f"case{i}" for i in range(B)]
        if len(checkpoint_prefixes) != B:
            raise ConfigurationError(
                f"{len(checkpoint_prefixes)} checkpoint prefixes for "
                f"{B} cases")
        self.checkpoint_prefixes = list(checkpoint_prefixes)
        self._ckpt_managers: dict[int, object] = {}
        self.fault_plans = dict(fault_plans) if fault_plans else {}
        self.fault_attempt = fault_attempt
        self.step_callback = step_callback
        #: Cells corrupted by fault plans (chaos telemetry).
        self.faults_injected = 0
        #: Checkpoints written by the per-case cadence.
        self.checkpoints_written = 0
        #: Stacked steps taken (every active case advances each one).
        self.step_count = 0
        #: Retire-and-compact events (telemetry).
        self.retire_events = 0
        #: Total batch wall seconds and case-steps (sum of batch widths
        #: over all stacked steps) — the amortised-grind denominators.
        self.wall_seconds_total = 0.0
        self.case_steps_total = 0
        self._results: dict[int, EnsembleCaseResult] = {}

    # ------------------------------------------------------------------
    def _resolve_tuning(self) -> None:
        """Resolve the ``tuning`` knob against the *batched* signature."""
        spec = self.tuning
        if spec is None or spec == "off":
            return
        from repro.tuning import Autotuner, TuningCache, TuningPlan

        if isinstance(spec, TuningPlan):
            self.tuning_plan = spec
            return
        if isinstance(spec, dict):
            entry = dict(spec)
            entry.setdefault("source", "manual")
            self.tuning_plan = TuningPlan.from_dict(entry)
            return
        if spec == "auto":
            from repro.hardware.devices import get_device

            device = (get_device(self.tile_device)
                      if isinstance(self.tile_device, str)
                      else self.tile_device)
            self.tuner = Autotuner(cache=TuningCache(self.tuning_cache),
                                   device=device)
            self.tuning_plan = self.tuner.plan_for(
                self.layout, self.mixture, self.grid, self.bcs, self.config,
                self.state.stacked, threads=self.threads,
                sweep_layout=self.sweep_layout, batch=self.batch0)
            return
        raise ConfigurationError(
            f"tuning must be 'off', 'auto', a TuningPlan, or a plan dict; "
            f"got {spec!r}")

    def _build_rhs(self, batch: int) -> RHS:
        plan = self.tuning_plan
        return RHS(self.layout, self.mixture, self.grid, self.bcs,
                   self.config, stopwatch=self.stopwatch,
                   use_workspace=True, threads=self.threads,
                   tile_device=self.tile_device,
                   sweep_layout=self.sweep_layout, fusion=self.fusion,
                   backend=self.backend,
                   weno_variant=(plan.weno_variant if plan is not None
                                 else "chained"),
                   riemann_variant=(plan.riemann_variant
                                    if plan is not None else "reference"),
                   tiles=plan.tiles if plan is not None else None,
                   batch=batch)

    # ------------------------------------------------------------------
    @property
    def batch(self) -> int:
        """Number of cases still marching."""
        return self.state.batch

    @property
    def q(self) -> np.ndarray:
        """The stacked conservative block ``(nvars, batch, *grid)``."""
        return self.state.stacked

    # ------------------------------------------------------------------
    def step(self, *, dt_limit: np.ndarray | None = None) -> np.ndarray:
        """Advance every active case one step; returns the dt vector.

        Mirrors the standalone step exactly: one shared
        ``cons_to_prim`` feeds both the dt computation and RK stage
        one; ``dt_limit`` (per-case) clips the final step onto each
        horizon with the same comparison semantics as the scalar
        driver.
        """
        B = self.batch
        if B == 0:
            raise ConfigurationError("every ensemble case has retired")
        ws = self.rhs.workspace
        # H2D seam: the stacked block marches on the backend while the
        # per-case bookkeeping below reads the host copy (identity, and
        # therefore bitwise neutral, on the host backends).
        q_dev = self.backend.from_host(self.state.stacked)
        with self.stopwatch.time("other"):
            prim0 = cons_to_prim(self.layout, self.mixture, q_dev,
                                 out=ws.prim)
        if self.fixed_dt is not None:
            dt = np.full(B, self.fixed_dt, dtype=DTYPE)
        else:
            dt = to_host_array(cfl_dts(self.layout, self.mixture, prim0,
                                       self.grid, self.cfl))
        if dt_limit is not None:
            # Per-case analog of "if dt > dt_limit: dt = dt_limit".
            dt = np.minimum(dt, dt_limit)
        dt_field = self.backend.from_host(
            dt.reshape((B,) + (1,) * self.grid.ndim))
        with WallTimer() as timer:
            self.state.stacked = to_host_array(ssp_rk_step(
                self.rhs, q_dev, dt_field, self.rk_order,
                workspace=ws, prim0=prim0, executor=self.rhs.executor))
        self.time += dt
        self.steps += 1
        self.step_count += 1
        self.wall += timer.elapsed / B
        self.wall_seconds_total += timer.elapsed
        self.case_steps_total += B
        if self.fault_plans:
            self._inject_faults()
        failures: dict[int, str] = {}
        if self.check_every and self.step_count % self.check_every == 0:
            failures = self._failed_slots()
        if self.checkpoint_every \
                and self.step_count % self.checkpoint_every == 0:
            for slot in range(B):
                if slot not in failures:
                    self._checkpoint_slot(slot)
        if failures:
            self._retire(sorted(failures), failures=failures)
        if self.step_callback is not None:
            self.step_callback(self)
        return dt

    # ------------------------------------------------------------------
    def _inject_faults(self) -> None:
        """Apply per-case fault plans on each case's absolute step."""
        for slot in range(self.batch):
            orig = self.state.case_index[slot]
            plan = self.fault_plans.get(orig)
            if plan is not None:
                self.faults_injected += plan.apply(
                    self.state.view(slot), step=int(self.steps[slot]),
                    attempt=self.fault_attempt)

    def _failed_slots(self) -> dict[int, str]:
        """Slots whose state went unphysical, with their diagnostics.

        In ``on_failure="raise"`` mode the first bad case aborts the
        batch (the pre-service behavior); in ``"retire"`` mode every
        bad slot is collected so the caller can retire them together
        and let the survivors keep marching.
        """
        failures: dict[int, str] = {}
        for slot in range(self.batch):
            diag = check_state(self.layout, self.mixture,
                               self.state.view(slot))
            if diag is None:
                continue
            orig = self.state.case_index[slot]
            message = (f"unphysical state in ensemble case {orig} "
                       f"({self.names[orig]!r}) at case step "
                       f"{int(self.steps[slot])} (stacked step "
                       f"{self.step_count}): {diag}")
            if self.on_failure == "raise":
                raise NumericsError(message)
            failures[slot] = message
        return failures

    def _checkpoint_slot(self, slot: int) -> None:
        """Rotating durable checkpoint of one case, under its prefix."""
        from repro.io.checkpoint import CheckpointManager

        orig = self.state.case_index[slot]
        mgr = self._ckpt_managers.get(orig)
        if mgr is None:
            mgr = CheckpointManager(self.checkpoint_dir,
                                    keep=self.checkpoint_keep,
                                    prefix=self.checkpoint_prefixes[orig])
            self._ckpt_managers[orig] = mgr
        mgr.save(self.state.view(slot), step=int(self.steps[slot]),
                 time=float(self.time[slot]))
        self.checkpoints_written += 1

    # ------------------------------------------------------------------
    def validate_state(self) -> None:
        """Per-case physical-state check; the error names the case."""
        for slot in range(self.batch):
            diag = check_state(self.layout, self.mixture,
                               self.state.view(slot))
            if diag is not None:
                orig = self.state.case_index[slot]
                raise NumericsError(
                    f"unphysical state in ensemble case {orig} "
                    f"({self.names[orig]!r}) at stacked step "
                    f"{self.step_count}: {diag}")

    # ------------------------------------------------------------------
    def run(self, *, t_end: object | None = None,
            n_steps: int | None = None) -> list[EnsembleCaseResult]:
        """March to per-case horizons (or a fixed stacked step count).

        ``t_end`` may be a scalar (shared horizon) or a length-``B``
        sequence of per-case horizons; cases retire independently as
        they land on theirs (ragged completion).  ``n_steps`` advances
        every active case that many stacked steps with no retirement.
        Returns the per-case results in original case order.
        """
        if (t_end is None) == (n_steps is None):
            raise ConfigurationError("specify exactly one of t_end or n_steps")
        if n_steps is not None:
            for _ in range(n_steps):
                if not self.batch:  # every case retired (failures)
                    break
                self.step()
            return self.results()
        try:
            t_vec = np.broadcast_to(
                np.asarray(t_end, dtype=DTYPE), (self.batch0,)).copy()
        except ValueError:
            raise ConfigurationError(
                f"t_end must be a scalar or one horizon per case; got "
                f"shape {np.asarray(t_end).shape} for {self.batch0} cases"
            ) from None
        if np.any(t_vec < 0.0):
            raise ConfigurationError(
                f"t_end must be non-negative, got {t_vec.min()}")
        while self.batch:
            slots = np.asarray(self.state.case_index)
            t_slot = t_vec[slots]
            # Same horizon predicate as the scalar driver's run loop.
            active = self.time < t_slot * (1.0 - 1e-12)
            if not active.all():
                self._retire(np.flatnonzero(~active).tolist())
                continue
            self.step(dt_limit=t_slot - self.time)
        return self.results()

    # ------------------------------------------------------------------
    def _case_result(self, slot: int, *, status: str = "done",
                     error: str | None = None) -> EnsembleCaseResult:
        orig = self.state.case_index[slot]
        steps = int(self.steps[slot])
        run_steps = steps - int(self.steps0[slot])
        work = (self.grid.num_cells * self.layout.nvars * run_steps
                * len(SSP_SCHEMES[self.rk_order]))
        grind = float(self.wall[slot]) / work * 1e9 if work else None
        return EnsembleCaseResult(
            index=orig, name=self.names[orig],
            q=self.state.view(slot).copy(),
            time=float(self.time[slot]), steps=steps,
            wall_seconds=float(self.wall[slot]), grind_time_ns=grind,
            status=status, error=error)

    def _retire(self, done: list[int],
                failures: dict[int, str] | None = None) -> None:
        """Record finished slots; compact survivors; rebuild the RHS.

        ``failures`` maps retiring slots to diagnostics: those cases
        leave with ``status="failed"`` instead of ``"done"``.  The
        rebuilt RHS reuses the resolved tuning plan (fused kernels
        are compile-cached by spec, so a width change is cheap) and
        inherits the old engine's sweep/limiter counters so telemetry
        spans the whole run.
        """
        failures = failures or {}
        for slot in done:
            error = failures.get(slot)
            self._results[self.state.case_index[slot]] = \
                self._case_result(
                    slot, status="failed" if error else "done", error=error)
        keep = [s for s in range(self.batch) if s not in set(done)]
        old = self.rhs
        self.state.compact(keep)
        self.time = self.time[keep].copy()
        self.steps = self.steps[keep].copy()
        self.steps0 = self.steps0[keep].copy()
        self.wall = self.wall[keep].copy()
        self.retire_events += 1
        if keep:
            self.rhs = self._build_rhs(len(keep))
            self.rhs.sweep_counters.merge(old.sweep_counters)
            self.rhs.limited_faces = old.limited_faces
        if old.executor is not None and (not keep or old is not self.rhs):
            old.executor.shutdown()

    # ------------------------------------------------------------------
    def results(self) -> list[EnsembleCaseResult]:
        """Per-case results in original order (snapshots for active cases)."""
        out: dict[int, EnsembleCaseResult] = dict(self._results)
        for slot in range(self.batch):
            out[self.state.case_index[slot]] = self._case_result(slot)
        missing = [i for i in range(self.batch0) if i not in out]
        if missing:
            raise ConfigurationError(
                f"ensemble lost track of case(s) {missing}")
        return [out[i] for i in range(self.batch0)]

    # ------------------------------------------------------------------
    def grind_time_ns(self) -> float:
        """Amortised per-case grind over the whole ensemble (paper metric).

        Batch wall divided by the total per-case work actually
        advanced: ns per cell per PDE per RHS evaluation, counting each
        stacked step once per case it carried.
        """
        if not self.case_steps_total:
            raise NumericsError("no steps recorded yet")
        work = (self.grid.num_cells * self.layout.nvars
                * self.case_steps_total * len(SSP_SCHEMES[self.rk_order]))
        return self.wall_seconds_total / work * 1e9

    def kernel_breakdown(self) -> dict[str, float]:
        """Share of host wall time per kernel family."""
        return self.stopwatch.fractions()
