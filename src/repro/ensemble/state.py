"""Stacked conservative state for an ensemble of same-shape cases.

An :class:`EnsembleState` owns one contiguous array of shape
``(nvars, B, *grid.shape)`` holding ``B`` concurrent cases.  The batch
axis sits *inside* the variable axis — kernels index variables on axis
0 and are shape-generic along every trailing axis, so the whole RHS
pipeline sweeps the stacked block exactly as it would sweep one case
with an extra leading "spatial" axis (the virtual-direction scheme of
:class:`repro.solver.rhs.RHS` with ``batch`` set).

Cases retire independently (ragged horizons): :meth:`compact` drops
finished slots and re-packs the survivors contiguously, preserving the
mapping back to the caller's original case order in
:attr:`case_index`.  Compaction copies the survivor slices bitwise, so
the remaining cases are unperturbed by their neighbours' retirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common import DTYPE, ConfigurationError
from repro.solver.case import Case


def _same_grid(a, b) -> bool:
    """Bitwise grid identity: same rank and identical face coordinates."""
    if a is b:
        return True
    if len(a.faces) != len(b.faces):
        return False
    return all(np.array_equal(fa, fb) for fa, fb in zip(a.faces, b.faces))


@dataclass
class EnsembleState:
    """Conservative states of ``B`` cases stacked along axis 1.

    ``stacked[:, i]`` is a zero-copy view of case ``i``'s conservative
    field, shaped exactly like a standalone :class:`Case` state —
    kernels and diagnostics that take ``(nvars, *grid.shape)`` arrays
    work on it unchanged.
    """

    layout: object
    mixture: object
    grid: object
    stacked: np.ndarray
    #: Slot → position in the original case list (compaction permutes
    #: slots but never forgets where a case came from).
    case_index: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.stacked.ndim != self.grid.ndim + 2:
            raise ConfigurationError(
                f"stacked state must be (nvars, batch, *grid); got shape "
                f"{self.stacked.shape} for a {self.grid.ndim}D grid")
        if not self.case_index:
            self.case_index = list(range(self.stacked.shape[1]))
        if len(self.case_index) != self.stacked.shape[1]:
            raise ConfigurationError(
                f"case_index has {len(self.case_index)} entries for "
                f"batch width {self.stacked.shape[1]}")

    # ------------------------------------------------------------------
    @classmethod
    def from_cases(cls, cases: list[Case],
                   initial: list[np.ndarray | None] | None = None,
                   ) -> "EnsembleState":
        """Stack the initial conservative states of same-shape cases.

        All cases must share the grid (identical face coordinates) and
        the mixture — one stacked RHS advances them all, so the
        geometry and EOS must be common.  Initial conditions are free
        to differ per case; that is the point of an ensemble.

        ``initial`` optionally overrides the starting state per case —
        a restart seed from a checkpoint instead of the case's own
        initial condition; ``None`` entries fall back to the case.
        """
        if not cases:
            raise ConfigurationError("ensemble needs at least one case")
        first = cases[0]
        for i, case in enumerate(cases[1:], start=1):
            if not _same_grid(case.grid, first.grid):
                raise ConfigurationError(
                    f"ensemble case {i} has a different grid than case 0; "
                    f"batched execution requires identical face coordinates")
            if case.mixture != first.mixture:
                raise ConfigurationError(
                    f"ensemble case {i} has a different mixture than case 0; "
                    f"batched execution requires a common EOS")
        if initial is None:
            initial = [None] * len(cases)
        if len(initial) != len(cases):
            raise ConfigurationError(
                f"{len(initial)} initial states for {len(cases)} cases")
        fields = []
        for case, seed in zip(cases, initial):
            if seed is None:
                fields.append(case.initial_conservative())
                continue
            expect = (case.layout.nvars, *case.grid.shape)
            if tuple(seed.shape) != expect:
                raise ConfigurationError(
                    f"restart state shape {tuple(seed.shape)} does not "
                    f"match case {expect}")
            fields.append(np.asarray(seed, dtype=DTYPE))
        stacked = np.ascontiguousarray(np.stack(fields, axis=1))
        return cls(first.layout, first.mixture, first.grid, stacked)

    # ------------------------------------------------------------------
    @property
    def batch(self) -> int:
        """Current (post-compaction) number of active cases."""
        return self.stacked.shape[1]

    def view(self, slot: int) -> np.ndarray:
        """Zero-copy ``(nvars, *grid.shape)`` view of one active case."""
        return self.stacked[:, slot]

    # ------------------------------------------------------------------
    def compact(self, keep: list[int]) -> None:
        """Drop every slot not in ``keep``; re-pack survivors contiguously.

        ``keep`` is a list of current slot indices in ascending order.
        The survivor slices are copied bitwise into a fresh contiguous
        block (fancy indexing materialises the copy), so retiring a
        neighbour never perturbs a remaining case.
        """
        if sorted(set(keep)) != list(keep):
            raise ConfigurationError(
                f"compact keep-list must be strictly ascending slot "
                f"indices, got {keep}")
        if keep and not 0 <= keep[-1] < self.batch:
            raise ConfigurationError(
                f"compact slot {keep[-1]} outside batch of {self.batch}")
        self.stacked = np.ascontiguousarray(self.stacked[:, keep])
        self.case_index = [self.case_index[s] for s in keep]
