"""Roofline model (paper Fig. 1).

The attainable performance of a kernel with arithmetic intensity
:math:`I` (FLOP/byte of DRAM traffic) on a device with peak
:math:`P` and bandwidth :math:`B` is :math:`\\min(P, I \\cdot B)`.
A kernel is *memory-bound* when :math:`I` is below the ridge
:math:`P/B` and *compute-bound* above it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigurationError
from repro.hardware.devices import DeviceSpec


def attainable_gflops(device: DeviceSpec, intensity: float) -> float:
    """Roofline ceiling at the given arithmetic intensity (FLOP/byte)."""
    if intensity <= 0.0:
        raise ConfigurationError(f"arithmetic intensity must be positive, got {intensity}")
    return min(device.roofline_peak_gflops, intensity * device.mem_bw_gbps)


def ridge_intensity(device: DeviceSpec) -> float:
    """Arithmetic intensity of the memory-to-compute-bound transition."""
    return device.ridge_flops_per_byte


@dataclass(frozen=True)
class RooflinePoint:
    """One measured/modeled kernel placed on a device's roofline."""

    kernel: str
    device: DeviceSpec
    intensity: float              # FLOP / DRAM byte
    achieved_gflops: float

    def __post_init__(self) -> None:
        if self.intensity <= 0.0 or self.achieved_gflops < 0.0:
            raise ConfigurationError("invalid roofline point")

    @property
    def bound(self) -> str:
        """"memory" or "compute", by which roof limits this kernel."""
        return "memory" if self.intensity < ridge_intensity(self.device) else "compute"

    @property
    def fraction_of_peak(self) -> float:
        """Achieved fraction of the device's FP64 peak (the paper's % numbers)."""
        return self.achieved_gflops / self.device.roofline_peak_gflops

    @property
    def fraction_of_roof(self) -> float:
        """Achieved fraction of the attainable roofline ceiling."""
        return self.achieved_gflops / attainable_gflops(self.device, self.intensity)
