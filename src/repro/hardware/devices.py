"""Device catalog: every GPU and CPU the paper benchmarks.

Numbers are vendor-published specifications (peak FP64 throughput, HBM /
DRAM bandwidth, L2 capacity).  Where the paper quotes a spec explicitly
(§V: "NVIDIA A100, H100, and GH200 have memory bandwidths of 2 TB/s,
3.35 TB/s, and 4 TB/s and L2 cache sizes of 40 MB, 50 MB, and 50 MB";
"the 8 MB L2 cache of the MI250X"; "low memory bandwidth of 900 GB/s"
for V100) we use the paper's value.

For the MI250X, ``peak_fp64_matrix_gflops`` is the matrix/packed-FMA
peak (47.9 TF per GCD); the paper's observation that the MI250X's
memory-to-compute-bound transition sits at 3.4x the arithmetic
intensity of a V100 is reproduced by using the matrix peak for the
roofline ridge (47.9/1.6 = 29.9 F/B vs V100's 7.8/0.9 = 8.7 F/B, ratio
3.45).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigurationError


@dataclass(frozen=True)
class DeviceSpec:
    """Published hardware characteristics of one compute die.

    For multi-die packages (MI250X), the spec describes a single GCD —
    the scheduling unit the paper counts ("65536 MI250X GCDs").
    """

    name: str
    vendor: str
    kind: str                      # "gpu" | "cpu"
    peak_fp64_gflops: float        # vector/SIMD FP64 peak, GFLOP/s
    mem_bw_gbps: float             # DRAM/HBM bandwidth, GB/s
    l2_mib: float                  # last-level (GPU L2 / CPU L3) capacity, MiB
    peak_fp64_matrix_gflops: float | None = None  # matrix-engine peak if any
    cores: int | None = None       # CPU core count (for per-core normalisation)
    kernel_launch_us: float = 5.0  # kernel launch latency, microseconds

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ConfigurationError(f"kind must be gpu or cpu, got {self.kind!r}")
        if min(self.peak_fp64_gflops, self.mem_bw_gbps, self.l2_mib) <= 0:
            raise ConfigurationError(f"{self.name}: specs must be positive")

    @property
    def roofline_peak_gflops(self) -> float:
        """Peak used for the roofline ceiling (matrix engine when present)."""
        return self.peak_fp64_matrix_gflops or self.peak_fp64_gflops

    @property
    def ridge_flops_per_byte(self) -> float:
        """Arithmetic intensity of the memory/compute-bound transition."""
        return self.roofline_peak_gflops / self.mem_bw_gbps

    @property
    def l2_bytes(self) -> float:
        return self.l2_mib * 1024.0 * 1024.0


GPUS: dict[str, DeviceSpec] = {
    # OLCF Summit's V100 (SXM2): 7.8 TF FP64, paper quotes 900 GB/s.
    "v100": DeviceSpec("NV V100", "nvidia", "gpu", 7_800.0, 900.0, 6.0),
    # A100 PCIe (paper's compute-breakdown device): 9.7 TF, 2 TB/s, 40 MB L2.
    "a100": DeviceSpec("NV A100 PCIe", "nvidia", "gpu", 9_700.0, 2_000.0, 40.0),
    # H100 SXM: 34 TF vector / 67 TF tensor FP64, 3.35 TB/s, 50 MB L2.
    "h100": DeviceSpec("NV H100 SXM", "nvidia", "gpu", 34_000.0, 3_350.0, 50.0,
                       peak_fp64_matrix_gflops=67_000.0),
    # GH200's Hopper die with HBM3e: 4 TB/s per the paper.
    "gh200": DeviceSpec("NV GH200", "nvidia", "gpu", 34_000.0, 4_000.0, 50.0,
                        peak_fp64_matrix_gflops=67_000.0),
    # One MI250X GCD: 23.95 TF vector / 47.9 TF matrix, 1.6 TB/s, 8 MB L2.
    "mi250x": DeviceSpec("AMD MI250X GCD", "amd", "gpu", 23_950.0, 1_600.0, 8.0,
                         peak_fp64_matrix_gflops=47_900.0),
}

CPUS: dict[str, DeviceSpec] = {
    # AMD EPYC 9564 "Genoa" (paper's fastest CPU): 64 cores, Zen 4
    # AVX-512 at 16 DP FLOP/cycle/core, ~3.1 GHz sustained; 12ch DDR5-4800.
    "epyc9564": DeviceSpec("AMD EPYC 9564", "amd", "cpu", 3_170.0, 460.0, 256.0,
                           cores=64, kernel_launch_us=0.0),
    # Intel Xeon Max 9468 "Sapphire Rapids HBM": 48 cores, 2 AVX-512 FMA
    # ports (32 DP/cycle), ~2.1 GHz AVX base; 64 GB HBM2e.
    "xeonmax9468": DeviceSpec("Intel Xeon Max 9468", "intel", "cpu", 3_225.0, 1_000.0, 105.0,
                              cores=48, kernel_launch_us=0.0),
    # NVIDIA Grace: 72 Neoverse V2 cores, 4x128-bit SVE2 (16 DP/cycle),
    # ~3.1 GHz; LPDDR5X ~500 GB/s usable.
    "grace": DeviceSpec("NVIDIA Grace", "nvidia", "cpu", 3_570.0, 500.0, 114.0,
                        cores=72, kernel_launch_us=0.0),
    # IBM Power10 (dual-chip module as deployed): older, slower per §IV-D.
    "power10": DeviceSpec("IBM Power10", "ibm", "cpu", 1_600.0, 409.0, 120.0,
                          cores=30, kernel_launch_us=0.0),
}

DEVICES: dict[str, DeviceSpec] = {**GPUS, **CPUS}

#: Catalog entry standing in for "the machine this process runs on"
#: when a heuristic needs cache/bandwidth numbers but the caller named
#: no device: a mainstream many-core server CPU.
DEFAULT_HOST_KEY = "epyc9564"


def default_host_device() -> DeviceSpec:
    """The catalog's generic host stand-in (see :data:`DEFAULT_HOST_KEY`).

    Heuristics that are "informed by the device catalog" — the sweep
    engine's auto layout choice, tile sizing — fall back to this spec
    when no explicit ``tile_device`` / ``--device`` was given.
    """
    return DEVICES[DEFAULT_HOST_KEY]


def get_device(key: str) -> DeviceSpec:
    """Look up a device by its short key (e.g. ``"mi250x"``)."""
    try:
        return DEVICES[key.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown device {key!r}; available: {sorted(DEVICES)}") from None
