"""Device catalog: every GPU and CPU the paper benchmarks.

Numbers are vendor-published specifications (peak FP64 throughput, HBM /
DRAM bandwidth, L2 capacity).  Where the paper quotes a spec explicitly
(§V: "NVIDIA A100, H100, and GH200 have memory bandwidths of 2 TB/s,
3.35 TB/s, and 4 TB/s and L2 cache sizes of 40 MB, 50 MB, and 50 MB";
"the 8 MB L2 cache of the MI250X"; "low memory bandwidth of 900 GB/s"
for V100) we use the paper's value.

For the MI250X, ``peak_fp64_matrix_gflops`` is the matrix/packed-FMA
peak (47.9 TF per GCD); the paper's observation that the MI250X's
memory-to-compute-bound transition sits at 3.4x the arithmetic
intensity of a V100 is reproduced by using the matrix peak for the
roofline ridge (47.9/1.6 = 29.9 F/B vs V100's 7.8/0.9 = 8.7 F/B, ratio
3.45).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigurationError


@dataclass(frozen=True)
class DeviceSpec:
    """Published hardware characteristics of one compute die.

    For multi-die packages (MI250X), the spec describes a single GCD —
    the scheduling unit the paper counts ("65536 MI250X GCDs").
    """

    name: str
    vendor: str
    kind: str                      # "gpu" | "cpu"
    peak_fp64_gflops: float        # vector/SIMD FP64 peak, GFLOP/s
    mem_bw_gbps: float             # DRAM/HBM bandwidth, GB/s
    l2_mib: float                  # last-level (GPU L2 / CPU L3) capacity, MiB
    peak_fp64_matrix_gflops: float | None = None  # matrix-engine peak if any
    cores: int | None = None       # CPU core count (for per-core normalisation)
    kernel_launch_us: float = 5.0  # kernel launch latency, microseconds

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ConfigurationError(f"kind must be gpu or cpu, got {self.kind!r}")
        if min(self.peak_fp64_gflops, self.mem_bw_gbps, self.l2_mib) <= 0:
            raise ConfigurationError(f"{self.name}: specs must be positive")

    @property
    def roofline_peak_gflops(self) -> float:
        """Peak used for the roofline ceiling (matrix engine when present)."""
        return self.peak_fp64_matrix_gflops or self.peak_fp64_gflops

    @property
    def ridge_flops_per_byte(self) -> float:
        """Arithmetic intensity of the memory/compute-bound transition."""
        return self.roofline_peak_gflops / self.mem_bw_gbps

    @property
    def l2_bytes(self) -> float:
        return self.l2_mib * 1024.0 * 1024.0


GPUS: dict[str, DeviceSpec] = {
    # OLCF Summit's V100 (SXM2): 7.8 TF FP64, paper quotes 900 GB/s.
    "v100": DeviceSpec("NV V100", "nvidia", "gpu", 7_800.0, 900.0, 6.0),
    # A100 PCIe (paper's compute-breakdown device): 9.7 TF, 2 TB/s, 40 MB L2.
    "a100": DeviceSpec("NV A100 PCIe", "nvidia", "gpu", 9_700.0, 2_000.0, 40.0),
    # H100 SXM: 34 TF vector / 67 TF tensor FP64, 3.35 TB/s, 50 MB L2.
    "h100": DeviceSpec("NV H100 SXM", "nvidia", "gpu", 34_000.0, 3_350.0, 50.0,
                       peak_fp64_matrix_gflops=67_000.0),
    # GH200's Hopper die with HBM3e: 4 TB/s per the paper.
    "gh200": DeviceSpec("NV GH200", "nvidia", "gpu", 34_000.0, 4_000.0, 50.0,
                        peak_fp64_matrix_gflops=67_000.0),
    # One MI250X GCD: 23.95 TF vector / 47.9 TF matrix, 1.6 TB/s, 8 MB L2.
    "mi250x": DeviceSpec("AMD MI250X GCD", "amd", "gpu", 23_950.0, 1_600.0, 8.0,
                         peak_fp64_matrix_gflops=47_900.0),
}

CPUS: dict[str, DeviceSpec] = {
    # AMD EPYC 9564 "Genoa" (paper's fastest CPU): 64 cores, Zen 4
    # AVX-512 at 16 DP FLOP/cycle/core, ~3.1 GHz sustained; 12ch DDR5-4800.
    "epyc9564": DeviceSpec("AMD EPYC 9564", "amd", "cpu", 3_170.0, 460.0, 256.0,
                           cores=64, kernel_launch_us=0.0),
    # Intel Xeon Max 9468 "Sapphire Rapids HBM": 48 cores, 2 AVX-512 FMA
    # ports (32 DP/cycle), ~2.1 GHz AVX base; 64 GB HBM2e.
    "xeonmax9468": DeviceSpec("Intel Xeon Max 9468", "intel", "cpu", 3_225.0, 1_000.0, 105.0,
                              cores=48, kernel_launch_us=0.0),
    # NVIDIA Grace: 72 Neoverse V2 cores, 4x128-bit SVE2 (16 DP/cycle),
    # ~3.1 GHz; LPDDR5X ~500 GB/s usable.
    "grace": DeviceSpec("NVIDIA Grace", "nvidia", "cpu", 3_570.0, 500.0, 114.0,
                        cores=72, kernel_launch_us=0.0),
    # IBM Power10 (dual-chip module as deployed): older, slower per §IV-D.
    "power10": DeviceSpec("IBM Power10", "ibm", "cpu", 1_600.0, 409.0, 120.0,
                          cores=30, kernel_launch_us=0.0),
}

DEVICES: dict[str, DeviceSpec] = {**GPUS, **CPUS}

#: Catalog entry standing in for "the machine this process runs on"
#: when a heuristic needs cache/bandwidth numbers but the caller named
#: no device: a mainstream many-core server CPU.
DEFAULT_HOST_KEY = "epyc9564"


def default_host_device() -> DeviceSpec:
    """The catalog's generic host stand-in (see :data:`DEFAULT_HOST_KEY`).

    Heuristics that are "informed by the device catalog" — the sweep
    engine's auto layout choice, tile sizing — fall back to this spec
    when no explicit ``tile_device`` / ``--device`` was given.
    """
    return DEVICES[DEFAULT_HOST_KEY]


def get_device(key: str) -> DeviceSpec:
    """Look up a device by its short key (e.g. ``"mi250x"``)."""
    try:
        return DEVICES[key.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown device {key!r}; available: {sorted(DEVICES)}") from None


# ----------------------------------------------------------------------
# Measured host bandwidth (STREAM-triad probe)
# ----------------------------------------------------------------------
#
# Roofline predictions for *this* machine are only as good as the
# bandwidth number fed into them, and the catalog's generic host
# stand-in can be off by an integer factor on a laptop or a shared CI
# runner.  The probe below measures sustained triad bandwidth
# (a = b + s*c: two streamed reads, one streamed write — the classic
# STREAM kernel) and caches the result per host fingerprint, so the
# model-vs-measured columns in BENCH_rhs.json are anchored to measured
# bytes/s, the way the paper validates its §V cost model against
# measured kernel times.

def _bandwidth_fingerprint() -> dict:
    """What the probed host looks like (cache key).

    Deliberately *not* :func:`repro.tuning.plan.host_fingerprint`
    (that would be a circular import); bandwidth only cares about the
    physical machine, not the kernel registry.
    """
    import os
    import platform

    import numpy as np

    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "numpy": np.__version__,
    }


def stream_triad_gbps(*, n_mib: float = 64.0, repeats: int = 5) -> float:
    """Sustained host bandwidth in GB/s from a STREAM-triad sweep.

    Each timed pass streams ``a = b + 0.5 * c`` over three ``n_mib``-MiB
    float64 arrays and is charged 24 bytes per element (two reads plus
    one write, STREAM's counting convention).  Returns the best of
    ``repeats`` passes — bandwidth is a ceiling, so the minimum time is
    the measurement and everything slower is interference.
    """
    import time as _time

    import numpy as np

    n = max(1, int(n_mib * 1024 * 1024 / 8))
    b = np.full(n, 1.5)
    c = np.full(n, 2.5)
    a = np.empty(n)
    np.add(b, 0.5 * c, out=a)  # untimed warmup (faults the pages in)
    best = None
    for _ in range(max(1, repeats)):
        t0 = _time.perf_counter()
        np.multiply(c, 0.5, out=a)
        np.add(b, a, out=a)
        elapsed = _time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
    # The two-ufunc spelling streams c,a(w),b,a(r),a(w) = 40 B/elem of
    # true traffic but is charged STREAM's 24 B/elem triad convention,
    # making the figure conservative (never flatters the roofline).
    return 24.0 * n / best / 1e9


def _bandwidth_cache_path():
    import os
    from pathlib import Path

    return Path(os.environ.get("REPRO_BANDWIDTH_CACHE",
                               ".repro_tuning/bandwidth.json"))


def measured_host_bandwidth(*, cache_path=None, refresh: bool = False,
                            n_mib: float = 64.0) -> float:
    """Measured host GB/s, cached per host fingerprint.

    The first call on a machine runs the triad probe (~a second) and
    stores the result under ``cache_path`` (default
    ``.repro_tuning/bandwidth.json``, overridable via
    ``$REPRO_BANDWIDTH_CACHE``); later calls — and later *processes* —
    read the cache.  A different fingerprint (new machine, new numpy)
    re-probes.  ``refresh=True`` forces a re-probe.
    """
    import json

    path = _bandwidth_cache_path() if cache_path is None else cache_path
    from pathlib import Path

    path = Path(path)
    fp = _bandwidth_fingerprint()
    if not refresh and path.exists():
        try:
            entry = json.loads(path.read_text())
            if entry.get("fingerprint") == fp:
                return float(entry["gbps"])
        except (ValueError, KeyError, OSError):
            pass  # corrupt/stale cache: fall through and re-probe
    gbps = stream_triad_gbps(n_mib=n_mib)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(
            {"fingerprint": fp, "gbps": gbps}, indent=2))
        tmp.replace(path)
    except OSError:
        pass  # read-only checkout: the measurement still stands
    return gbps


def measured_host_device(*, cache_path=None,
                         refresh: bool = False) -> DeviceSpec:
    """The catalog host stand-in with *measured* memory bandwidth.

    Everything except ``mem_bw_gbps`` keeps the catalog value (peak
    FLOP/s and cache geometry cannot be probed this cheaply); the name
    records the substitution so reports show where the number came
    from.
    """
    import dataclasses

    base = default_host_device()
    gbps = measured_host_bandwidth(cache_path=cache_path, refresh=refresh)
    return dataclasses.replace(base, name=f"{base.name} (measured BW)",
                               mem_bw_gbps=gbps)


def bandwidth_report(*, cache_path=None) -> dict:
    """Catalog-vs-measured bandwidth delta for the local host.

    Returns ``{"catalog_gbps", "measured_gbps", "ratio", "delta_pct"}``
    — ``ratio`` < 1 means the host is slower than the catalog spec
    (the common case), and ``delta_pct`` is the signed percentage
    error a catalog-based roofline would carry on this machine.
    """
    catalog = default_host_device().mem_bw_gbps
    measured = measured_host_bandwidth(cache_path=cache_path)
    return {
        "catalog_gbps": catalog,
        "measured_gbps": measured,
        "ratio": measured / catalog,
        "delta_pct": 100.0 * (measured - catalog) / catalog,
    }
