"""Analytic hardware models: device catalog, roofline, kernel cost model.

The paper's performance narrative is a roofline story: which kernels are
memory- vs compute-bound on which device, and how L2 capacity and HBM
bandwidth shape array-packing cost.  This package encodes the published
specs of every device the paper measures and prices kernels with a
roofline-plus-derating cost model whose derating factors are calibrated
to the paper's own quoted speedups (each factor's provenance is
documented where it is defined).
"""

from repro.hardware.devices import (
    CPUS,
    DEFAULT_HOST_KEY,
    DEVICES,
    GPUS,
    DeviceSpec,
    bandwidth_report,
    default_host_device,
    get_device,
    measured_host_bandwidth,
    measured_host_device,
    stream_triad_gbps,
)
from repro.hardware.roofline import RooflinePoint, attainable_gflops, ridge_intensity
from repro.hardware.costmodel import CostModel, KernelWorkload
from repro.hardware.transfer import TransferModel
from repro.hardware.workloads import ProblemShape, rhs_workloads, step_workloads
from repro.hardware.cache import SetAssociativeCache, transpose_miss_ratio
from repro.hardware.tiling import L2_OCCUPANCY, suggest_tile_count

__all__ = [
    "L2_OCCUPANCY",
    "suggest_tile_count",
    "DeviceSpec",
    "DEVICES",
    "GPUS",
    "CPUS",
    "get_device",
    "DEFAULT_HOST_KEY",
    "default_host_device",
    "bandwidth_report",
    "measured_host_bandwidth",
    "measured_host_device",
    "stream_triad_gbps",
    "RooflinePoint",
    "attainable_gflops",
    "ridge_intensity",
    "CostModel",
    "KernelWorkload",
    "TransferModel",
    "ProblemShape",
    "rhs_workloads",
    "step_workloads",
    "SetAssociativeCache",
    "transpose_miss_ratio",
]
