"""A last-level-cache model for strided array-packing kernels (paper §V).

The paper attributes slow array packing on the MI250X to its 8 MB L2:
"Kernel-level profiles of array packing routines show that the MI250X
has three times the L2 cache misses of an A100."  This module provides
a mechanistic account: it simulates the cache-line reference stream of
a blocked transpose (the GEAM/packing access pattern) against a
set-associative LRU cache of each device's capacity, and reports the
miss ratio.

The transpose reads rows of the source (contiguous lines, streaming)
while writing columns of the destination (one line per element until a
destination tile is resident).  Whether those destination lines survive
between consecutive row sweeps is exactly a question of capacity — the
quantity that differs 5x between A100 and MI250X.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import ConfigurationError
from repro.hardware.devices import DeviceSpec


@dataclass
class SetAssociativeCache:
    """A set-associative cache over 128-byte lines.

    ``policy`` is "lru" or "random".  GPU L2s use pseudo-random-ish
    replacement in practice; random replacement also avoids strict LRU's
    pathological zero-retention on cyclic over-capacity sweeps, giving
    the partial-retention behaviour real profiles show.
    """

    capacity_bytes: float
    line_bytes: int = 128
    ways: int = 16
    policy: str = "random"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ConfigurationError("invalid cache geometry")
        if self.policy not in ("lru", "random"):
            raise ConfigurationError(f"unknown replacement policy {self.policy!r}")
        self.num_sets = max(1, int(self.capacity_bytes)
                            // (self.line_bytes * self.ways))
        # tags[set][way]; -1 = invalid.
        self._tags = np.full((self.num_sets, self.ways), -1, dtype=np.int64)
        self._lru = np.zeros((self.num_sets, self.ways), dtype=np.int64)
        self._clock = 0
        self._rng = np.random.default_rng(self.seed)
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        s = line % self.num_sets
        self._clock += 1
        tags = self._tags[s]
        hit = np.nonzero(tags == line)[0]
        if hit.size:
            self._lru[s, hit[0]] = self._clock
            self.hits += 1
            return True
        if self.policy == "lru":
            victim = int(np.argmin(self._lru[s]))
        else:
            empty = np.nonzero(tags == -1)[0]
            victim = (int(empty[0]) if empty.size
                      else int(self._rng.integers(self.ways)))
        tags[victim] = line
        self._lru[s, victim] = self._clock
        self.misses += 1
        return False

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


#: Default destination footprint of one batched-transpose launch: the
#: paper's 8M-cell problems pack ~64 MB variables in ~8 batches, so each
#: launch's write working set is ~8 MB — right at the MI250X's L2
#: capacity and comfortably inside the A100's.
DEFAULT_TRANSPOSE_WORKING_SET = 8.2e6


def transpose_miss_ratio(device: DeviceSpec, *,
                         working_set_bytes: float = DEFAULT_TRANSPOSE_WORKING_SET,
                         scale: float = 1.0 / 64.0, sample_rows: int = 32,
                         line_bytes: int = 128) -> float:
    """Miss ratio of the packing/transpose access pattern on a device's L2.

    Models an ``R x C`` row-major source being written column-major:
    each source row streams (compulsory misses only) while each of its
    ``C`` elements touches a *different* destination line.  Whether
    those destination lines survive until the next row re-touches them
    (16 rows share a 128-byte line) is a pure capacity question: the
    destination working set is ``working_set_bytes``, sized here like
    the paper's 8M-cell packing buffers — between the MI250X's 8 MB and
    the A100's 40 MB L2.

    Simulation uses cache similitude: capacity and working set are both
    shrunk by ``scale`` (miss ratios depend on their ratio, not absolute
    size), keeping the reference stream small enough to simulate
    faithfully line by line.
    """
    if not 0.0 < scale <= 1.0:
        raise ConfigurationError("scale must be in (0, 1]")
    cache = SetAssociativeCache(device.l2_bytes * scale, line_bytes=line_bytes)
    elem = 8
    cols = max(1, int(working_set_bytes * scale // line_bytes))  # dest lines/row
    row_bytes = cols * elem
    rows = min(sample_rows, max(line_bytes // elem, 2))

    for r in range(rows):
        for c in range(0, cols, line_bytes // elem):
            # Source: one line covers line_bytes/elem elements (streamed).
            cache.access(r * row_bytes + c * elem)
        base = 1 << 40  # destination array, disjoint address range
        for c in range(cols):
            # Destination: column-major write, one distinct line each.
            cache.access(base + c * line_bytes + (r % (line_bytes // elem)) * elem)
    return cache.miss_ratio
