"""Host-device transfer model (PCIe / NVLink-C2C staging).

Used for two things the paper discusses:

* I/O-driven device-to-host pulls every O(10^3) steps (§III-B: "the
  relatively expensive GPU-CPU data transfer required for I/O ... is
  negligible to the overall runtime") — the I/O model verifies that
  negligibility instead of assuming it.
* MPI staging when GPU-aware MPI is unavailable (§IV-C / Fig. 4): each
  halo message pays a D2H before the send and an H2D after the receive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigurationError


@dataclass(frozen=True)
class TransferModel:
    """Latency/bandwidth model of one host-device link."""

    bandwidth_gbps: float   # GB/s, one direction
    latency_us: float       # per-transfer setup cost, microseconds

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0.0 or self.latency_us < 0.0:
            raise ConfigurationError("invalid transfer model parameters")

    def time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        return self.latency_us * 1e-6 + nbytes / (self.bandwidth_gbps * 1e9)


#: PCIe 3.0 x16 (Summit's V100s hang off NVLink to Power9, but the
#: staging path the paper exercises is host-memory bound): ~12 GB/s.
PCIE3 = TransferModel(bandwidth_gbps=12.0, latency_us=10.0)

#: PCIe 4.0 x16 (Frontier node, MI250X to EPYC host): ~24 GB/s.
PCIE4 = TransferModel(bandwidth_gbps=24.0, latency_us=8.0)

#: NVLink-C2C (GH200 superchip): ~450 GB/s, for completeness.
NVLINK_C2C = TransferModel(bandwidth_gbps=450.0, latency_us=2.0)
