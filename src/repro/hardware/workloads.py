"""The MFC per-step kernel suite as priceable workloads.

One right-hand-side evaluation of the five-equation solver decomposes
into the four kernel families the paper's breakdown figures track:

* **weno** — reconstruction, the compute-heavy kernel (Fig. 1: 45% of
  V100 peak, compute-bound there),
* **riemann** — the HLLC solve, memory-bound everywhere,
* **pack** — AoS->coalesced-4D packing and directional transposes
  (§III.C/§III.D; dominant on V100/MI250X per Fig. 7),
* **other** — boundary fill, conversions, flux divergence, RK updates.

Per-cell FLOP/byte coefficients are derived from the operation counts
of the actual kernels in :mod:`repro.weno` / :mod:`repro.riemann`
(~300 FLOPs per variable per direction for WENO5, ~100 for HLLC) with
DRAM traffic chosen to match the arithmetic intensities the paper's
roofline (Fig. 1) implies: WENO at ~14 FLOP/B sits compute-bound on
V100/A100 and memory-bound on MI250X; HLLC at ~1.3 FLOP/B is
memory-bound everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigurationError
from repro.hardware.costmodel import KernelWorkload

#: Per-cell, per-variable, per-direction workload coefficients.
WENO_FLOPS_COEF = 300.0
WENO_BYTES_COEF = 21.4          # -> AI ~ 14 FLOP/B
RIEMANN_FLOPS_COEF = 100.0
RIEMANN_BYTES_COEF = 75.0       # -> AI ~ 1.33 FLOP/B
PACK_BYTES_COEF = 85.3          # pure data movement
OTHER_FLOPS_COEF = 41.7
OTHER_BYTES_COEF = 50.0

#: Device kernel launches per RHS evaluation, per family.
LAUNCHES_PER_RHS = {"weno": 3, "riemann": 3, "pack": 4, "other": 10}


@dataclass(frozen=True)
class ProblemShape:
    """Size of the per-device problem the suite is built for."""

    cells: int
    nvars: int = 7        # 2-component 3D five-equation system (7 PDEs)
    ndim: int = 3

    def __post_init__(self) -> None:
        if self.cells < 1 or self.nvars < 3 or self.ndim not in (1, 2, 3):
            raise ConfigurationError(f"invalid problem shape {self}")


def rhs_workloads(shape: ProblemShape, *, coalesced: bool = True,
                  layout_aos: bool = False, fypp_inlined: bool = True,
                  private_compile_sized: bool = True) -> list[KernelWorkload]:
    """Kernel workloads of ONE right-hand-side evaluation.

    The optimisation flags default to the paper's tuned configuration;
    flipping them reproduces the §III.C/§III.D ablations.
    """
    n = float(shape.cells)
    vd = shape.nvars * shape.ndim
    inlined = fypp_inlined  # hot kernels call cross-module serial subroutines

    return [
        KernelWorkload(
            name="weno_reconstruction", kernel_class="weno",
            flops=WENO_FLOPS_COEF * vd * n, bytes=WENO_BYTES_COEF * vd * n,
            threads=n, launches=LAUNCHES_PER_RHS["weno"],
            layout_aos=layout_aos, coalesced=coalesced, inlined=inlined,
            private_compile_sized=private_compile_sized),
        KernelWorkload(
            name="riemann_hllc", kernel_class="riemann",
            flops=RIEMANN_FLOPS_COEF * vd * n, bytes=RIEMANN_BYTES_COEF * vd * n,
            threads=n, launches=LAUNCHES_PER_RHS["riemann"],
            layout_aos=layout_aos, coalesced=coalesced, inlined=inlined,
            private_compile_sized=private_compile_sized),
        KernelWorkload(
            name="array_packing", kernel_class="pack",
            flops=0.0, bytes=PACK_BYTES_COEF * vd * n,
            threads=n, launches=LAUNCHES_PER_RHS["pack"]),
        KernelWorkload(
            name="misc_updates", kernel_class="other",
            flops=OTHER_FLOPS_COEF * vd * n, bytes=OTHER_BYTES_COEF * vd * n,
            threads=n, launches=LAUNCHES_PER_RHS["other"]),
    ]


def step_workloads(shape: ProblemShape, *, rhs_evals: int = 3,
                   **flags) -> list[KernelWorkload]:
    """Workloads of one full SSP-RK time step (``rhs_evals`` RHS evaluations)."""
    per_rhs = rhs_workloads(shape, **flags)
    return [w.scaled(1.0) for _ in range(rhs_evals) for w in per_rhs]
