"""L2-aware tile sizing for the host gang backend.

The paper's §V reads kernel performance through last-level-cache
capacity: the MI250X's 8 MB L2 forces its packing kernels to stream
where an A100's 40 MB keeps working sets resident.  The host thread-tile
backend (:class:`repro.acc.gang.GangExecutor`) applies the same lens:
a tile should be small enough that the pipeline buffers it touches fit
in the device's last-level cache, so each worker streams its slab once
instead of thrashing.  This module turns the device catalog's L2 sizes
into a tile count, tying the *real* execution backend to the same specs
the analytic cost model prices kernels with.
"""

from __future__ import annotations

import math

from repro.common import ConfigurationError
from repro.hardware.devices import DeviceSpec

#: Fraction of the last-level cache a tile's working set may occupy.
#: Half leaves room for the other direction's buffers, code, and the
#: OS — the usual engineering margin for cache blocking.
L2_OCCUPANCY = 0.5


def suggest_tile_count(extent: int, workers: int, *,
                       bytes_per_slice: int = 0,
                       device: DeviceSpec | None = None,
                       occupancy: float = L2_OCCUPANCY) -> int:
    """Tile count for partitioning ``extent`` rows across ``workers``.

    Parameters
    ----------
    extent:
        Rows along the tiled (slowest) axis.
    workers:
        Worker threads; the result is always a multiple of ``workers``
        (or clamped to ``extent``), so a launch keeps every worker busy.
    bytes_per_slice:
        Working-set bytes the pipeline touches per unit row — all live
        field-sized buffers (padded primitives, face states, fluxes,
        scratch) counted across one row of the tiled axis.
    device:
        Catalog entry supplying the last-level-cache capacity; with no
        device (or no byte estimate) the baseline one-tile-per-worker
        split is returned.

    Returns
    -------
    int:
        At least ``min(workers, extent)``; grown in worker multiples
        until one tile's working set fits ``occupancy`` of the cache
        (or tiles can shrink no further).
    """
    if extent < 1:
        raise ConfigurationError(f"extent must be >= 1, got {extent}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    tiles = min(workers, extent)
    if device is None or bytes_per_slice <= 0:
        return tiles
    budget = device.l2_bytes * occupancy
    while tiles < extent:
        rows_per_tile = math.ceil(extent / tiles)
        if rows_per_tile * bytes_per_slice <= budget:
            break
        tiles = min(extent, tiles + workers)
    return tiles
