"""Kernel cost model: roofline ceiling x calibrated achieved fraction.

Modeled kernel time is

.. math::

   t = \\frac{\\text{flops}}{\\min(P_{eff}, I\\,B_{eff})\\cdot \\eta}
       + t_{launch},

(or ``bytes / (B_eff * eta)`` for pure data-movement kernels), where the
effective peak/bandwidth embed the paper's code-generation effects:

========================  =====================================================
Flag / factor              Provenance (paper section, quoted magnitude)
========================  =====================================================
``layout_aos``             §III.C: packing derived types into multidimensional
                           arrays gave a **6x** WENO speedup -> AoS kernels run
                           6x slower.
``coalesced=False``        §III.C: coalesced reshaping gave a **10x** WENO
                           speedup -> uncoalesced DRAM streams at 1/16 the
                           bandwidth (which prices out to ~10x on the WENO
                           kernel's intensity).
``inlined=False``          §III.C: Fypp inlining "prevents a tenfold slowdown"
                           of Riemann/WENO -> **10x**.
``private_compile_sized``  §III.D: a run-time-sized ``private`` array under CCE
                           on AMD triggers device-side allocation; fixing one
                           array took a kernel from 90% to 3% of runtime ->
                           **30x** on CCE+AMD only.
launch configuration       §III.C: the OpenACC default (one vector lane per
                           gang) under-utilises the device; ``gang vector`` and
                           ``collapse`` raise exposed parallelism.  Utilisation
                           is ``min(1, threads / saturation_threads)``.
``eta`` (efficiency)       Fraction of the roofline ceiling each kernel class
                           achieves on each device, calibrated once against the
                           paper's Figs. 1, 6, and 7 (see EFFICIENCY below).
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common import ConfigurationError
from repro.hardware.devices import DeviceSpec

# -- paper-quoted penalty magnitudes (see module docstring table) ----------
AOS_TIME_PENALTY = 6.0
UNCOALESCED_BW_DERATE = 16.0
NOT_INLINED_PENALTY = 10.0
RUNTIME_PRIVATE_PENALTY = 30.0

#: Threads needed to saturate a GPU (gangs x vector lanes).
GPU_SATURATION_THREADS = 65_536

#: Achieved fraction of the roofline ceiling, per kernel class and device.
#: Calibrated once so the modeled Fig. 6/7 breakdowns and Fig. 1 roofline
#: placements land on the paper's measurements; devices absent from a row
#: fall back to "default".
EFFICIENCY: dict[str, dict[str, float]] = {
    "weno": {
        "v100": 0.45,      # paper Fig. 1: 45% of V100 peak, compute-bound
        "a100": 0.38,
        "h100": 0.131,
        "gh200": 0.120,
        "mi250x": 0.157,   # prices to ~21% of the memory roof it sits under
        "epyc9564": 0.585,
        "xeonmax9468": 0.17,
        "grace": 0.26,
        "power10": 0.14,
        "default": 0.35,
    },
    "riemann": {
        "v100": 0.70,      # memory-bound; 13% of peak FLOPS per Fig. 1
        "a100": 0.467,
        "h100": 0.43,
        "gh200": 0.42,
        "mi250x": 0.287,   # 3% of MI250X peak per Fig. 1
        "epyc9564": 0.78,
        "xeonmax9468": 0.21,
        "grace": 0.33,
        "power10": 0.175,
        "default": 0.45,
    },
    "pack": {
        "v100": 0.509,     # Fig. 7: V100 packs 3.71x slower than A100
        "a100": 0.85,
        "h100": 0.85,
        "gh200": 0.85,
        "mi250x": 0.405,   # Fig. 7: 2.62x slower than A100 (3x the L2 misses)
        "epyc9564": 0.91,
        "xeonmax9468": 0.24,
        "grace": 0.38,
        "power10": 0.19,
        "default": 0.60,
    },
    "other": {
        "v100": 0.50,
        "a100": 0.50,
        "h100": 0.50,
        "gh200": 0.50,
        "mi250x": 0.25,
        "epyc9564": 0.65,
        "xeonmax9468": 0.18,
        "grace": 0.28,
        "power10": 0.13,
        "default": 0.45,
    },
}

KERNEL_CLASSES = tuple(EFFICIENCY)


@dataclass(frozen=True)
class KernelWorkload:
    """One kernel's total work and code-generation characteristics."""

    name: str
    kernel_class: str              # "weno" | "riemann" | "pack" | "other"
    flops: float                   # total FP64 operations
    bytes: float                   # total DRAM traffic (after cache reuse)
    threads: float = GPU_SATURATION_THREADS  # exposed parallelism (gangs x lanes)
    launches: int = 1              # number of device kernel launches
    layout_aos: bool = False
    coalesced: bool = True
    inlined: bool = True
    private_compile_sized: bool = True

    def __post_init__(self) -> None:
        if self.kernel_class not in EFFICIENCY:
            raise ConfigurationError(
                f"kernel_class must be one of {KERNEL_CLASSES}, got {self.kernel_class!r}")
        if self.flops < 0 or self.bytes <= 0:
            raise ConfigurationError(f"{self.name}: need flops >= 0 and bytes > 0")
        if self.threads <= 0 or self.launches < 1:
            raise ConfigurationError(f"{self.name}: invalid threads/launches")

    @property
    def intensity(self) -> float:
        """Arithmetic intensity in FLOP per DRAM byte."""
        return self.flops / self.bytes

    def scaled(self, factor: float) -> "KernelWorkload":
        """The same kernel over ``factor`` times the work (launch count kept)."""
        return replace(self, flops=self.flops * factor, bytes=self.bytes * factor,
                       threads=self.threads * factor)


class CostModel:
    """Prices :class:`KernelWorkload` objects on a :class:`DeviceSpec`.

    Parameters
    ----------
    device:
        Target hardware.
    compiler:
        Optional compiler identifier ("nvhpc", "cce", "gnu"); the
        run-time-sized-private penalty only fires for CCE on AMD, per
        §III.D.
    """

    def __init__(self, device: DeviceSpec, compiler: str = "nvhpc"):
        self.device = device
        self.compiler = compiler.lower()

    # ------------------------------------------------------------------
    def efficiency(self, kernel_class: str) -> float:
        row = EFFICIENCY[kernel_class]
        return row.get(self._device_key(), row["default"])

    def _device_key(self) -> str:
        from repro.hardware.devices import DEVICES

        for key, spec in DEVICES.items():
            if spec is self.device or spec.name == self.device.name:
                return key
        return "default"

    # ------------------------------------------------------------------
    def kernel_time(self, work: KernelWorkload) -> float:
        """Modeled execution time in seconds."""
        dev = self.device
        bw = dev.mem_bw_gbps * 1e9
        peak = dev.roofline_peak_gflops * 1e9
        if not work.coalesced:
            bw /= UNCOALESCED_BW_DERATE

        eta = self.efficiency(work.kernel_class)
        if work.flops > 0.0:
            roof = min(peak, work.intensity * bw)
            t = work.flops / (roof * eta)
        else:
            t = work.bytes / (bw * eta)

        # Utilisation of the device by the launch configuration.
        if dev.kind == "gpu":
            util = min(1.0, work.threads / GPU_SATURATION_THREADS)
            t /= max(util, 1e-12)

        if work.layout_aos:
            t *= AOS_TIME_PENALTY
        if not work.inlined:
            t *= NOT_INLINED_PENALTY
        if (not work.private_compile_sized and self.compiler == "cce"
                and dev.vendor == "amd"):
            t *= RUNTIME_PRIVATE_PENALTY

        t += work.launches * dev.kernel_launch_us * 1e-6
        return t

    def achieved_gflops(self, work: KernelWorkload) -> float:
        """FLOP rate implied by the modeled time (for roofline placement)."""
        if work.flops <= 0.0:
            return 0.0
        return work.flops / self.kernel_time(work) / 1e9

    def suite_time(self, works: list[KernelWorkload]) -> float:
        """Total modeled time of a kernel suite (one RHS evaluation, say)."""
        return sum(self.kernel_time(w) for w in works)
