"""Floating-point policy for the whole package.

MFC computes in double precision on both CPUs and GPUs
(``real(kind(0d0))``); we mirror that with a package-wide ``float64``
policy.  Helper functions centralise the coercion so hot paths never pay
for redundant copies: :func:`as_float_array` only copies when the input
is not already a C-contiguous ``float64`` array.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ShapeError

#: Package-wide floating point dtype (double precision, as in MFC).
DTYPE = np.float64

#: Machine epsilon for :data:`DTYPE`; used for positivity floors and
#: WENO smoothness regularisation.
EPS = float(np.finfo(DTYPE).eps)


def as_float_array(values, *, copy: bool = False) -> np.ndarray:
    """Return ``values`` as a C-contiguous :data:`DTYPE` array.

    Avoids copying when the input already satisfies the dtype and layout
    requirements (the guides' "use views, not copies" rule), unless
    ``copy=True`` forces a defensive copy.
    """
    arr = np.asarray(values, dtype=DTYPE)
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    elif copy:
        arr = arr.copy()
    return arr


def require_float(arr: np.ndarray, *, ndim: int | None = None, name: str = "array") -> np.ndarray:
    """Validate that ``arr`` is a :data:`DTYPE` ndarray, optionally of rank ``ndim``.

    Raises :class:`~repro.common.errors.ShapeError` on mismatch.  Used at
    public API boundaries; internal hot loops assume validated inputs.
    """
    if not isinstance(arr, np.ndarray) or arr.dtype != DTYPE:
        raise ShapeError(f"{name} must be a numpy array of dtype {DTYPE}, got {type(arr).__name__}"
                         f"{'' if not isinstance(arr, np.ndarray) else f' of dtype {arr.dtype}'}")
    if ndim is not None and arr.ndim != ndim:
        raise ShapeError(f"{name} must have ndim={ndim}, got ndim={arr.ndim}")
    return arr
