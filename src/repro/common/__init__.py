"""Shared infrastructure: dtype policy, errors, timers, logging.

Everything in :mod:`repro` uses double precision (``float64``), matching
MFC's ``real(kind(0d0))`` convention.  The :data:`DTYPE` constant is the
single source of truth; tests assert that solver outputs carry it.
"""

from repro.common.dtype import DTYPE, EPS, as_float_array, require_float
from repro.common.errors import (
    FAILURE_CLASSES,
    CheckpointError,
    ClusterError,
    ConfigurationError,
    DeadlineError,
    DirectiveError,
    InjectedCrash,
    NumericsError,
    PositivityError,
    ReproError,
    ShapeError,
    WorkerDiedError,
    failure_class,
)
from repro.common.timing import Stopwatch, WallTimer

__all__ = [
    "DTYPE",
    "EPS",
    "as_float_array",
    "require_float",
    "ReproError",
    "CheckpointError",
    "ClusterError",
    "ConfigurationError",
    "DeadlineError",
    "DirectiveError",
    "FAILURE_CLASSES",
    "InjectedCrash",
    "NumericsError",
    "PositivityError",
    "ShapeError",
    "WorkerDiedError",
    "failure_class",
    "Stopwatch",
    "WallTimer",
]
