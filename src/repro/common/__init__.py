"""Shared infrastructure: dtype policy, errors, timers, logging.

Everything in :mod:`repro` uses double precision (``float64``), matching
MFC's ``real(kind(0d0))`` convention.  The :data:`DTYPE` constant is the
single source of truth; tests assert that solver outputs carry it.
"""

from repro.common.dtype import DTYPE, EPS, as_float_array, require_float
from repro.common.errors import (
    CheckpointError,
    ClusterError,
    ConfigurationError,
    DirectiveError,
    NumericsError,
    PositivityError,
    ReproError,
    ShapeError,
)
from repro.common.timing import Stopwatch, WallTimer

__all__ = [
    "DTYPE",
    "EPS",
    "as_float_array",
    "require_float",
    "ReproError",
    "CheckpointError",
    "ClusterError",
    "ConfigurationError",
    "DirectiveError",
    "NumericsError",
    "PositivityError",
    "ShapeError",
    "Stopwatch",
    "WallTimer",
]
