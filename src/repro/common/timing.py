"""Wall-clock timing utilities.

Two distinct notions of time coexist in this package:

* **Wall time** — real elapsed seconds of the Python process, measured
  with :class:`WallTimer` / :class:`Stopwatch`.  Used by the benchmark
  harness for host-side kernels.
* **Modeled time** — the analytic execution time a kernel would take on
  a simulated device, produced by :mod:`repro.hardware.costmodel`.  That
  is tracked by the profiler (:mod:`repro.profiling`), not here.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


class WallTimer:
    """Context manager measuring elapsed wall time in seconds.

    >>> with WallTimer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class Stopwatch:
    """Accumulating stopwatch keyed by section name.

    Useful for coarse host-side breakdowns (e.g. "how long did RHS vs
    I/O take in this example script").  ``laps`` maps section name to
    accumulated seconds.

    Accumulation is thread-safe: the thread-tiled gang backend has every
    worker time its own tile kernels and fold them into the one shared
    stopwatch, so the per-kernel breakdown keeps the same keys (and adds
    up per-thread busy seconds) whether a stage ran serial or tiled.
    """

    laps: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def time(self, name: str) -> "_Lap":
        return _Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        with self._lock:
            self.laps[name] = self.laps.get(name, 0.0) + seconds

    def total(self) -> float:
        return sum(self.laps.values())

    def fractions(self) -> dict[str, float]:
        """Per-section share of the total; empty dict if nothing timed."""
        tot = self.total()
        if tot == 0.0:
            return {}
        return {k: v / tot for k, v in self.laps.items()}


class _Lap:
    def __init__(self, owner: Stopwatch, name: str) -> None:
        self._owner = owner
        self._name = name
        self._start: float | None = None

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self._owner.add(self._name, time.perf_counter() - self._start)
