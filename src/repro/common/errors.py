"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all package-specific errors."""


class ConfigurationError(ReproError):
    """A case, grid, device, or cluster configuration is invalid."""


class ShapeError(ReproError):
    """An array has the wrong dtype, rank, or extent."""


class CheckpointError(ConfigurationError):
    """A checkpoint file is unreadable, corrupt, or incompatible.

    Raised when a snapshot fails its CRC32 integrity check, is
    truncated, or records dtype/endianness/layout metadata that does
    not match what the reader expects.  Subclasses
    :class:`ConfigurationError` so callers guarding against malformed
    restart files keep working.
    """


class ClusterError(ReproError):
    """A multi-process run failed: a rank died, a halo wait timed out,
    or restart coordination found no common checkpoint."""


class NumericsError(ReproError):
    """The numerical state became invalid (NaN/Inf, CFL violation, ...)."""


class PositivityError(NumericsError):
    """Density, pressure, or volume fraction left its physical range."""


class DirectiveError(ReproError):
    """An OpenACC-model directive is malformed or used illegally.

    Mirrors a compile-time rejection by NVHPC/CCE: e.g. ``collapse(n)``
    exceeding the nest depth, a ``seq`` loop also asking for ``gang``,
    or touching device data outside a data region.
    """
