"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all package-specific errors."""


class ConfigurationError(ReproError):
    """A case, grid, device, or cluster configuration is invalid."""


class ShapeError(ReproError):
    """An array has the wrong dtype, rank, or extent."""


class CheckpointError(ConfigurationError):
    """A checkpoint file is unreadable, corrupt, or incompatible.

    Raised when a snapshot fails its CRC32 integrity check, is
    truncated, or records dtype/endianness/layout metadata that does
    not match what the reader expects.  Subclasses
    :class:`ConfigurationError` so callers guarding against malformed
    restart files keep working.

    ``reason`` categorises the rejection (``"crc"``, ``"truncated"``,
    ``"magic"``, ``"version"``, ``"incompatible"``, ``"shape"``, or the
    generic ``"corrupt"``) so recovery reports can say not just *how
    many* checkpoints were skipped but *why*.
    """

    def __init__(self, message: str = "", *, reason: str = "corrupt") -> None:
        super().__init__(message)
        self.reason = reason


class ClusterError(ReproError):
    """A multi-process run failed: a rank died, a halo wait timed out,
    or restart coordination found no common checkpoint."""


class NumericsError(ReproError):
    """The numerical state became invalid (NaN/Inf, CFL violation, ...)."""


class PositivityError(NumericsError):
    """Density, pressure, or volume fraction left its physical range."""


class DirectiveError(ReproError):
    """An OpenACC-model directive is malformed or used illegally.

    Mirrors a compile-time rejection by NVHPC/CCE: e.g. ``collapse(n)``
    exceeding the nest depth, a ``seq`` loop also asking for ``gang``,
    or touching device data outside a data region.
    """


class WorkerDiedError(ReproError):
    """A supervised worker process vanished without reporting a result.

    Raised (or recorded) by batch supervisors when a child exits with a
    nonzero code, is killed by a signal, or exits cleanly without
    sending its result — the process-death half of the transient
    failure class.
    """


class DeadlineError(ReproError):
    """A supervised worker blew its no-progress or wall-clock deadline.

    The heartbeat-watching parent declares the worker stuck (no
    heartbeat advance, no result, no exit within the grace window) or
    over its wall budget, terminates it, and records this — the
    timeout half of the transient failure class.
    """


class InjectedCrash(ReproError):
    """A deterministic test-only crash fired (simulated process death).

    Raised by crash hooks such as
    :attr:`repro.ensemble.ledger.JobLedger.fail_after_appends` to
    simulate the *service process itself* dying at an exact point.
    Recovery machinery must never catch this — it stands in for
    SIGKILL, which cannot be caught either.
    """


#: Failure classes for the job-service taxonomy.
FAILURE_CLASSES = ("transient", "permanent")

#: Error types that are *permanent*: retrying replays the same
#: deterministic failure (an invalid spec, or a divergence that already
#: exhausted the in-step retry/escalation ladder).  Everything else —
#: worker death, deadlines, I/O hiccups — is presumed transient.
_PERMANENT_TYPES = (ConfigurationError, ShapeError, NumericsError)

#: Transient types listed explicitly (``CheckpointError`` subclasses
#: ``ConfigurationError`` but a corrupt checkpoint is recoverable: the
#: reader falls back or restarts from scratch).
_TRANSIENT_TYPES = (CheckpointError, WorkerDiedError, DeadlineError,
                    ClusterError, OSError)


def failure_class(err: BaseException) -> str:
    """Classify an exception as ``"transient"`` or ``"permanent"``.

    Transient failures (worker death, timeout, I/O) are worth a bounded
    retry — the same job may well succeed on clean hardware.  Permanent
    failures (bad spec, divergence with the retry ladder exhausted) are
    deterministic: retrying burns cycles to reproduce the same error,
    so the service quarantines the job instead.
    """
    if isinstance(err, _TRANSIENT_TYPES):
        return "transient"
    if isinstance(err, _PERMANENT_TYPES):
        return "permanent"
    return "transient"
