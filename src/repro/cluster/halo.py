"""Functional halo exchange over in-process ranks (paper §III-A).

This is a *real* implementation of MFC's halo protocol, executed over
simulated ranks living in one process:

1. each rank packs its boundary region into a contiguous 1D buffer
   ("for compatibility with MPI subroutines"),
2. buffers are exchanged with the face neighbour (the in-process
   stand-in for ``MPI_Sendrecv``),
3. the received buffer is unpacked into the ghost layer.

Because packing, exchange, and unpacking are explicit, byte volumes are
exact — the analytic :class:`~repro.cluster.mpi_sim.CommModel` prices
the same buffers this module actually moves — and tests can assert that
a decomposed run reproduces the single-block run bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.bc.boundary import BC, BoundarySet, fill_axis_ghosts, pad_axis
from repro.cluster.decomposition import BlockDecomposition
from repro.common import DTYPE, ConfigurationError
from repro.profiling.counters import HaloCounters
from repro.state.layout import StateLayout


def validate_periodicity(decomp: BlockDecomposition, bcs: BoundarySet) -> None:
    """Reject boundary sets whose periodicity disagrees with the decomposition.

    Both sides of every axis are inspected: a malformed set with
    ``PERIODIC`` on one side only is an error naming the axis, not a
    silent pass (the exchange would fill one ghost layer from a wrap
    and the other from a wall).
    """
    for axis in range(decomp.ndim):
        lo, hi = bcs.per_axis[axis]
        per_lo = lo is BC.PERIODIC
        per_hi = hi is BC.PERIODIC
        if per_lo != per_hi:
            raise ConfigurationError(
                f"axis {axis}: PERIODIC boundary on one side only "
                f"(lo={lo.name}, hi={hi.name}) — periodic axes must be "
                f"periodic on both sides")
        if per_lo != decomp.periodic[axis]:
            raise ConfigurationError(
                f"axis {axis}: BoundarySet periodicity must match the "
                f"decomposition's periodic flags")


def fill_wall_ghosts(padded: np.ndarray, layout: StateLayout, bcs: BoundarySet,
                     decomp: BlockDecomposition, rank: int, axis: int,
                     ng: int) -> None:
    """Apply physical BCs on ``rank``'s global-wall side(s) of ``axis``.

    Sides facing an interior (or periodic-wrap) neighbour are left for
    the halo transport to fill; a rank in the middle of a decomposed
    axis gets no wall fill at all.
    """
    lo_bc, hi_bc = bcs.per_axis[axis]
    coords = decomp.rank_coords(rank)
    at_lo = coords[axis] == 0 and not decomp.periodic[axis]
    at_hi = (coords[axis] == decomp.rank_grid[axis] - 1
             and not decomp.periodic[axis])
    if at_lo or at_hi:
        _fill_wall(padded, layout, axis, ng,
                   lo_bc if at_lo else None, hi_bc if at_hi else None)


def boundary_strip(field: np.ndarray, axis: int, ng: int, side: int) -> np.ndarray:
    """View of the outgoing boundary region of an *unpadded* block.

    ``side=-1`` is the low-interior strip (destined for the low
    neighbour's high ghosts), ``side=+1`` the high-interior strip.
    """
    n = field.shape[axis + 1]
    idx = [slice(None)] * field.ndim
    idx[axis + 1] = slice(0, ng) if side == -1 else slice(n - ng, n)
    return field[tuple(idx)]


def ghost_strip(padded: np.ndarray, axis: int, ng: int, side: int) -> np.ndarray:
    """View of the ghost layer of a *padded* block on ``side``."""
    n = padded.shape[axis + 1] - 2 * ng
    idx = [slice(None)] * padded.ndim
    idx[axis + 1] = slice(0, ng) if side == -1 else slice(n + ng, n + 2 * ng)
    return padded[tuple(idx)]


def pack_face(padded: np.ndarray, axis: int, ng: int, side: int) -> np.ndarray:
    """Pack the outgoing boundary region into a 1D buffer.

    ``side=-1`` packs the low-interior region (destined for the low
    neighbour's high ghosts), ``side=+1`` the high-interior region.
    """
    n = padded.shape[axis + 1] - 2 * ng
    idx = [slice(None)] * padded.ndim
    idx[axis + 1] = slice(ng, 2 * ng) if side == -1 else slice(n, n + ng)
    return np.ascontiguousarray(padded[tuple(idx)]).ravel()


def unpack_face(padded: np.ndarray, axis: int, ng: int, side: int,
                buffer: np.ndarray) -> None:
    """Unpack a received 1D buffer into the ghost layer on ``side``."""
    n = padded.shape[axis + 1] - 2 * ng
    idx = [slice(None)] * padded.ndim
    idx[axis + 1] = slice(0, ng) if side == -1 else slice(n + ng, n + 2 * ng)
    target = padded[tuple(idx)]
    if buffer.size != target.size:
        raise ConfigurationError(
            f"halo buffer has {buffer.size} elements, ghost region needs {target.size}")
    target[...] = buffer.reshape(target.shape)


class HaloExchanger:
    """Splits a global field into rank blocks and fills their ghosts.

    The per-axis padded arrays it produces are exactly what
    :class:`repro.solver.rhs.RHS` consumes per sweep direction, so a
    distributed RHS differs from the serial one only in where ghost
    values come from.
    """

    def __init__(self, decomp: BlockDecomposition, layout: StateLayout,
                 bcs: BoundarySet, ng: int):
        if decomp.ndim != layout.ndim:
            raise ConfigurationError("decomposition/layout dimensionality mismatch")
        validate_periodicity(decomp, bcs)
        self.decomp = decomp
        self.layout = layout
        self.bcs = bcs
        self.ng = ng
        self.counters = HaloCounters()
        # Preallocated per-(rank, axis, side) mailboxes for the
        # post/fill protocol: one boundary-strip-shaped buffer per
        # neighboured side, reused every exchange.  Neighbours along an
        # axis share their other-axis extents, so a rank's outgoing
        # strip always matches the receiver's ghost region.
        self._mailbox: dict[tuple[int, int, int], np.ndarray] = {}
        for r in range(decomp.nranks):
            local = decomp.local_cells(r)
            for axis in range(decomp.ndim):
                for side in (-1, 1):
                    if decomp.neighbor(r, axis, side) is None:
                        continue
                    shape = [layout.nvars, *local]
                    shape[axis + 1] = ng
                    self._mailbox[(r, axis, side)] = np.empty(shape, dtype=DTYPE)

    # Legacy counter aliases (tests and benchmarks read these).
    @property
    def bytes_exchanged(self) -> int:
        return self.counters.bytes_exchanged

    @property
    def messages(self) -> int:
        return self.counters.messages

    # -- mailbox protocol ----------------------------------------------------
    def post(self, rank: int, axis: int, field: np.ndarray) -> None:
        """Pack ``rank``'s boundary strips along ``axis`` into its mailboxes.

        ``field`` is the rank's *unpadded* block.  In-process posting is
        a single strided copy into the preallocated mailbox — the
        stand-in for packing straight into a shared-memory segment.
        """
        ng = self.ng
        for side in (-1, 1):
            box = self._mailbox.get((rank, axis, side))
            if box is None:
                continue
            box[...] = boundary_strip(field, axis, ng, side)
            self.counters.posts += 1

    def fill(self, rank: int, axis: int, padded: np.ndarray) -> None:
        """Fill ``rank``'s interior-face ghosts along ``axis`` from the
        neighbours' posted mailboxes (the ``MPI_Sendrecv`` completion)."""
        ng = self.ng
        for side in (-1, 1):
            nb = self.decomp.neighbor(rank, axis, side)
            if nb is None:
                continue
            box = self._mailbox[(nb, axis, -side)]
            ghost_strip(padded, axis, ng, side)[...] = box
            self.counters.messages += 1
            self.counters.bytes_exchanged += box.nbytes

    def fill_walls(self, rank: int, axis: int, padded: np.ndarray) -> None:
        """Apply physical BCs on ``rank``'s global-wall side(s) of ``axis``."""
        fill_wall_ghosts(padded, self.layout, self.bcs, self.decomp,
                         rank, axis, self.ng)

    # -- field scatter/gather ------------------------------------------------
    def split(self, global_field: np.ndarray) -> list[np.ndarray]:
        """Per-rank interior blocks of a global ``(nvars, ...)`` field."""
        return [np.ascontiguousarray(global_field[(slice(None), *self.decomp.local_slices(r))])
                for r in range(self.decomp.nranks)]

    def gather(self, blocks: list[np.ndarray]) -> np.ndarray:
        """Reassemble the global field from rank blocks."""
        nvars = blocks[0].shape[0]
        out = np.empty((nvars, *self.decomp.global_cells), dtype=blocks[0].dtype)
        for r, block in enumerate(blocks):
            out[(slice(None), *self.decomp.local_slices(r))] = block
        return out

    # -- the exchange itself ------------------------------------------------
    def padded_axis(self, blocks: list[np.ndarray], axis: int) -> list[np.ndarray]:
        """Pad every block along ``axis`` and fill ghosts: halo exchange at
        interior faces, physical BCs at global walls."""
        ng = self.ng
        padded = [pad_axis(b, axis, ng) for b in blocks]

        # Interior faces: pack -> sendrecv -> unpack, per side.
        for r in range(self.decomp.nranks):
            for side in (-1, 1):
                nb = self.decomp.neighbor(r, axis, side)
                if nb is None:
                    continue
                # The neighbour's facing boundary region fills our ghosts.
                buf = pack_face(padded[nb], axis, ng, -side)
                unpack_face(padded[r], axis, ng, side, buf)
                self.counters.bytes_exchanged += buf.nbytes
                self.counters.messages += 1

        # Global walls: physical boundary conditions.
        lo_bc, hi_bc = self.bcs.per_axis[axis]
        for r in range(self.decomp.nranks):
            coords = self.decomp.rank_coords(r)
            at_lo = coords[axis] == 0 and not self.decomp.periodic[axis]
            at_hi = (coords[axis] == self.decomp.rank_grid[axis] - 1
                     and not self.decomp.periodic[axis])
            if at_lo or at_hi:
                _fill_wall(padded[r], self.layout, axis, ng,
                           lo_bc if at_lo else None, hi_bc if at_hi else None)
        return padded


def _fill_wall(padded: np.ndarray, layout: StateLayout, axis: int, ng: int,
               lo: BC | None, hi: BC | None) -> None:
    """Apply physical BCs on the wall side(s) only, leaving halo-filled
    ghosts untouched on the other side."""
    if lo is not None and hi is not None:
        fill_axis_ghosts(padded, layout, axis, ng, lo, hi)
        return
    # One-sided: fill both with a scratch pass, then restore the halo side.
    n = padded.shape[axis + 1] - 2 * ng
    idx = [slice(None)] * padded.ndim
    if lo is None:
        idx[axis + 1] = slice(0, ng)
    else:
        idx[axis + 1] = slice(n + ng, n + 2 * ng)
    keep = padded[tuple(idx)].copy()
    fill_axis_ghosts(padded, layout, axis, ng,
                     lo if lo is not None else BC.EXTRAPOLATION,
                     hi if hi is not None else BC.EXTRAPOLATION)
    padded[tuple(idx)] = keep
