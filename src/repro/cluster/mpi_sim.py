"""Analytic MPI communication model (paper §III-A halo exchange, §IV-C
GPU-aware MPI).

Two message paths are priced:

* **GPU-aware** — the NIC reads/writes device memory directly:
  ``latency + bytes / min(nic_share, link)``.
* **Host-staged** — without GPU-aware MPI the halo buffer is copied
  device->host, sent from host memory, and copied host->device on the
  receiver; each message pays two staging transfers on top of the wire
  time.  This is exactly the difference Fig. 4 measures (81% -> 92%
  strong-scaling efficiency at 16x devices).

A mild logarithmic contention factor models network congestion growth
with node count — the few percent the paper's weak scaling loses
between 128 and 65,536 devices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.topology import MachineSpec
from repro.common import ConfigurationError


@dataclass(frozen=True)
class NetworkModel:
    """Wire-level parameters derived from a machine spec."""

    latency_us: float
    bandwidth_gbps: float          # effective per-device MPI bandwidth
    contention_per_doubling: float = 0.05
    contention_threshold_log2: float = 8.0

    def __post_init__(self) -> None:
        if self.latency_us <= 0.0 or self.bandwidth_gbps <= 0.0:
            raise ConfigurationError("invalid network parameters")
        if self.contention_per_doubling < 0.0:
            raise ConfigurationError("contention must be non-negative")

    @classmethod
    def of(cls, machine: MachineSpec) -> "NetworkModel":
        return cls(latency_us=machine.mpi_latency_us,
                   bandwidth_gbps=machine.effective_mpi_bandwidth_gbps,
                   contention_per_doubling=machine.contention_per_doubling,
                   contention_threshold_log2=machine.contention_threshold_log2)

    def contention(self, nnodes: int) -> float:
        """Bandwidth-inflation factor from global-link congestion.

        Unity below the threshold node count (strong-scaling regimes);
        grows linearly in log2(nodes) beyond it (the few percent the
        paper's weak scaling loses between 128 and 65,536 devices).
        """
        excess = math.log2(max(nnodes, 1)) - self.contention_threshold_log2
        return 1.0 + self.contention_per_doubling * max(0.0, excess)

    def message_time(self, nbytes: float, *, nnodes: int = 1) -> float:
        """Seconds for one point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        return self.latency_us * 1e-6 \
            + nbytes / (self.bandwidth_gbps * 1e9) * self.contention(nnodes)


def allreduce_time(net: NetworkModel, nranks: int, nbytes: float = 8.0,
                   *, nnodes: int = 1) -> float:
    """One small MPI_Allreduce (recursive doubling): the per-step dt
    reduction every explicit CFL-stepped code performs.

    Cost: ``2 * ceil(log2 n)`` latency hops plus the (tiny) payload per
    hop, each hop priced through :meth:`NetworkModel.message_time` so
    the same ``contention(nnodes)`` factor the halo messages pay applies
    here too (previously the reduction rode uncontended bandwidth at
    65,536 ranks while point-to-point traffic did not).  Still
    microseconds even at full machine scale — the model confirms the
    paper's implicit assumption that no significant collective
    communication is required (§IV-B).
    """
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
    if nranks == 1:
        return 0.0
    hops = 2 * math.ceil(math.log2(nranks))
    return hops * net.message_time(nbytes, nnodes=nnodes)


@dataclass(frozen=True)
class CommModel:
    """Halo-exchange cost for one rank on one machine."""

    machine: MachineSpec
    gpu_aware: bool = True

    def network(self) -> NetworkModel:
        return NetworkModel.of(self.machine)

    def sendrecv_time(self, nbytes: float, *, nnodes: int = 1) -> float:
        """One MPI_Sendrecv of a halo buffer (paper §III-A).

        Send and receive of equal-size buffers overlap on the wire; the
        staging copies (when not GPU-aware) do not — the D2H of the
        outgoing buffer and H2D of the incoming buffer serialise with
        the transfer, per the paper's description of CPU-facilitated
        communication.
        """
        wire = self.network().message_time(nbytes, nnodes=nnodes)
        if self.gpu_aware:
            return wire
        staging = self.machine.staging_link.time(nbytes)
        return wire + 2.0 * staging

    def halo_exchange_time(self, *, local_cells: tuple[int, ...], ng: int,
                           nvars: int, nnodes: int = 1, itemsize: int = 8,
                           sides_per_axis: tuple[int, ...] | None = None) -> float:
        """One full halo exchange: per-dimension sequential sendrecv phases.

        MFC exchanges dimension by dimension (each phase needs the
        previous one's corners), and within a dimension performs one
        ``MPI_Sendrecv`` per side in sequence.

        ``sides_per_axis`` is the decomposition's per-axis neighbour
        count (:meth:`BlockDecomposition.max_neighbors_per_axis`): an
        axis that is not decomposed (``rank_grid[axis] == 1``,
        non-periodic) exchanges nothing, a two-rank non-periodic axis
        exchanges one message, everything else two.  When omitted the
        model falls back to the worst case of two messages per axis,
        which matches a fully-decomposed interior rank.
        """
        total = 0.0
        ncells = 1
        for c in local_cells:
            ncells *= c
        if sides_per_axis is None:
            sides_per_axis = tuple(2 for _ in local_cells)
        elif len(sides_per_axis) != len(local_cells):
            raise ConfigurationError(
                f"sides_per_axis covers {len(sides_per_axis)} axes, "
                f"local_cells has {len(local_cells)}")
        for axis, extent in enumerate(local_cells):
            if sides_per_axis[axis] == 0:
                continue
            face = ncells // extent
            nbytes = float(ng * face * nvars * itemsize)
            total += sides_per_axis[axis] * self.sendrecv_time(nbytes,
                                                               nnodes=nnodes)
        return total
