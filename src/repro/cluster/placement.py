"""Rank-to-node placement policies.

On a machine with fast intra-node links (NVLink / xGMI), *which* ranks
share a node determines how many halo faces take the fast path.  MFC's
default MPI mapping packs consecutive ranks onto each node; whether the
decomposition's fastest-varying axis aligns with that packing changes
the intra-node face fraction — a knob worth a few percent of step time
at scale.

:func:`intra_node_fraction` scores a placement; :class:`Placement`
provides the two canonical policies:

* ``contiguous`` — ranks 0..k-1 on node 0, the default launcher layout,
* ``strided`` — round-robin across nodes (the pathological layout that
  makes every face cross nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.decomposition import BlockDecomposition
from repro.common import ConfigurationError

POLICIES = ("contiguous", "strided")


@dataclass(frozen=True)
class Placement:
    """Maps ranks to nodes under a policy."""

    nranks: int
    ranks_per_node: int
    policy: str = "contiguous"

    def __post_init__(self) -> None:
        if self.nranks < 1 or self.ranks_per_node < 1:
            raise ConfigurationError("invalid placement sizes")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"policy must be one of {POLICIES}, got {self.policy!r}")

    @property
    def nnodes(self) -> int:
        return -(-self.nranks // self.ranks_per_node)

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise ConfigurationError(f"rank {rank} out of range")
        if self.policy == "contiguous":
            return rank // self.ranks_per_node
        return rank % self.nnodes


def intra_node_fraction(decomp: BlockDecomposition, placement: Placement) -> float:
    """Fraction of halo-exchange partner pairs that share a node."""
    if placement.nranks != decomp.nranks:
        raise ConfigurationError(
            f"placement covers {placement.nranks} ranks, decomposition has "
            f"{decomp.nranks}")
    intra = 0
    total = 0
    for r in range(decomp.nranks):
        for axis in range(decomp.ndim):
            for side in (-1, 1):
                nb = decomp.neighbor(r, axis, side)
                if nb is None or nb == r:
                    continue
                total += 1
                if placement.node_of(r) == placement.node_of(nb):
                    intra += 1
    return intra / total if total else 0.0


def best_policy(decomp: BlockDecomposition, ranks_per_node: int) -> str:
    """The policy with the higher intra-node face fraction."""
    scores = {
        policy: intra_node_fraction(
            decomp, Placement(decomp.nranks, ranks_per_node, policy))
        for policy in POLICIES
    }
    return max(scores, key=scores.get)
