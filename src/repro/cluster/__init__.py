"""Distributed-run substrate: decomposition, simulated MPI, halo exchange,
I/O model, machine topologies, and the scaling experiment drivers."""

from repro.cluster.decomposition import BlockDecomposition, factor3d
from repro.cluster.topology import FRONTIER, SUMMIT, MachineSpec
from repro.cluster.mpi_sim import CommModel, NetworkModel
from repro.cluster.halo import HaloExchanger, validate_periodicity
from repro.cluster.ranksolver import RankSolver
from repro.cluster.distributed import DistributedSolver
from repro.cluster.procs import (
    ClusterResult,
    ProcessCluster,
    RankFault,
    SharedMemoryTransport,
    ShmArena,
    drain_and_join,
)
from repro.cluster.events import Event, EventSimulator, StepTimeline
from repro.cluster.placement import Placement, best_policy, intra_node_fraction
from repro.cluster.io_model import IOModel
from repro.cluster.resilience import (
    FailureModel,
    ResilientPoint,
    ResilientRunOutcome,
    daly_interval,
    resilience_efficiency,
    resilience_waste,
    simulate_resilient_run,
)
from repro.cluster.scaling import ScalingDriver, ScalingPoint

__all__ = [
    "BlockDecomposition",
    "factor3d",
    "MachineSpec",
    "SUMMIT",
    "FRONTIER",
    "NetworkModel",
    "CommModel",
    "HaloExchanger",
    "validate_periodicity",
    "RankSolver",
    "DistributedSolver",
    "ProcessCluster",
    "ClusterResult",
    "RankFault",
    "SharedMemoryTransport",
    "ShmArena",
    "drain_and_join",
    "Event",
    "EventSimulator",
    "StepTimeline",
    "Placement",
    "best_policy",
    "intra_node_fraction",
    "IOModel",
    "FailureModel",
    "daly_interval",
    "resilience_waste",
    "resilience_efficiency",
    "ResilientPoint",
    "ResilientRunOutcome",
    "simulate_resilient_run",
    "ScalingDriver",
    "ScalingPoint",
]
