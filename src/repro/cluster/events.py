"""Discrete-event timeline of a distributed time step.

The closed-form :class:`~repro.cluster.scaling.ScalingDriver` prices a
step as compute + comm of one representative rank.  This module builds
the *full dependency timeline* instead: every rank's compute, buffer
pack, (optional) D2H staging, wire transfer, H2D staging, and unpack
events, with each receive gated on its partner's send.  That exposes
what the closed form cannot:

* **load imbalance** — remainder cells make some blocks larger; their
  neighbours idle at the exchange,
* **imbalance propagation** — a slow rank delays its neighbours, whose
  delay spreads one hop per exchange phase,
* **per-rank idle fractions and a critical path**, renderable as a
  Gantt-style trace.

The model is bulk-synchronous per sweep dimension, matching MFC's
dimension-by-dimension ``MPI_Sendrecv`` ladder (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.decomposition import BlockDecomposition
from repro.cluster.mpi_sim import NetworkModel
from repro.cluster.topology import MachineSpec
from repro.common import ConfigurationError
from repro.hardware.costmodel import CostModel
from repro.hardware.workloads import ProblemShape, rhs_workloads
from repro.weno import halo_width


@dataclass(frozen=True)
class Event:
    """One timeline entry of one rank."""

    rank: int
    kind: str          # "compute" | "pack" | "stage" | "wire" | "unpack" | "idle"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class StepTimeline:
    """The simulated timeline of one RHS evaluation (or whole step)."""

    events: list[Event] = field(default_factory=list)
    finish: float = 0.0
    nranks: int = 0

    def rank_events(self, rank: int) -> list[Event]:
        return [e for e in self.events if e.rank == rank]

    def busy_seconds(self, rank: int) -> float:
        return sum(e.duration for e in self.rank_events(rank)
                   if e.kind != "idle")

    def idle_fraction(self, rank: int) -> float:
        busy = self.busy_seconds(rank)
        return 1.0 - busy / self.finish if self.finish > 0 else 0.0

    def max_idle_fraction(self) -> float:
        return max(self.idle_fraction(r) for r in range(self.nranks))

    def gantt(self, *, width: int = 72, max_ranks: int = 12) -> str:
        """ASCII Gantt chart of the timeline (c/p/s/w/u per event kind)."""
        glyph = {"compute": "c", "pack": "p", "stage": "s", "wire": "w",
                 "unpack": "u", "idle": "."}
        lines = [f"step timeline: {self.finish * 1e3:.3f} ms, {self.nranks} ranks"]
        scale = width / self.finish if self.finish > 0 else 0.0
        for r in range(min(self.nranks, max_ranks)):
            row = ["."] * width
            for e in self.rank_events(r):
                a = min(int(e.start * scale), width - 1)
                b = max(min(int(e.end * scale), width), a + 1)
                for i in range(a, b):
                    row[i] = glyph[e.kind]
            lines.append(f"r{r:03d} |{''.join(row)}|")
        if self.nranks > max_ranks:
            lines.append(f"... ({self.nranks - max_ranks} more ranks)")
        return "\n".join(lines)


class EventSimulator:
    """Simulates per-rank timelines for one machine + decomposition."""

    def __init__(self, machine: MachineSpec, decomp: BlockDecomposition,
                 *, gpu_aware: bool = True, nvars: int = 7,
                 weno_order: int = 5, compute_noise: float = 0.0,
                 seed: int = 0, use_intra_node_links: bool = False,
                 placement=None):
        if decomp.ndim != 3:
            raise ConfigurationError("the event simulator models 3D runs")
        self.machine = machine
        self.decomp = decomp
        self.gpu_aware = gpu_aware
        self.nvars = nvars
        #: Refinement beyond the closed-form model: messages between
        #: devices on the same node use the NVLink/xGMI link instead of
        #: the NIC.  ``placement`` (a cluster.placement.Placement)
        #: controls the rank->node map; default is contiguous packing.
        self.use_intra_node_links = use_intra_node_links
        self.placement = placement
        self._ng = halo_width(weno_order)
        self._cost = CostModel(machine.device, machine.compiler)
        self._net = NetworkModel.of(machine)
        #: Multiplicative per-rank compute jitter (OS noise, clock spread).
        rng = np.random.default_rng(seed)
        self._noise = 1.0 + compute_noise * rng.standard_normal(decomp.nranks)
        self._noise = np.maximum(self._noise, 0.5)

    # ------------------------------------------------------------------
    def _compute_seconds(self, rank: int) -> float:
        local = self.decomp.local_cells(rank)
        cells = int(np.prod(local))
        shape = ProblemShape(cells=cells, nvars=self.nvars)
        return self._cost.suite_time(rhs_workloads(shape)) * float(self._noise[rank])

    def _face_bytes(self, rank: int, axis: int) -> float:
        local = self.decomp.local_cells(rank)
        face = int(np.prod(local)) // local[axis]
        return float(self._ng * face * self.nvars * 8)

    def _pack_seconds(self, nbytes: float) -> float:
        bw = self.machine.device.mem_bw_gbps * 1e9
        eta = self._cost.efficiency("pack")
        return 2.0 * nbytes / (bw * eta)  # gather + scatter traffic

    def _stage_seconds(self, nbytes: float) -> float:
        return self.machine.staging_link.time(nbytes)

    def _node_of(self, rank: int) -> int:
        if self.placement is not None:
            return self.placement.node_of(rank)
        return rank // self.machine.devices_per_node

    def _wire_seconds(self, r: int, partner: int | None, nbytes: float,
                      nnodes: int) -> float:
        """Message time, taking the intra-node fast path when enabled."""
        if (self.use_intra_node_links and partner is not None
                and self._node_of(r) == self._node_of(partner)):
            return self.machine.intra_node_link.time(nbytes)
        return self._net.message_time(nbytes, nnodes=nnodes)

    # ------------------------------------------------------------------
    def simulate_rhs(self) -> StepTimeline:
        """One RHS evaluation: compute, then the 3-phase halo ladder."""
        n = self.decomp.nranks
        tl = StepTimeline(nranks=n)
        t = np.zeros(n)
        nnodes = max(1, n // self.machine.devices_per_node)

        # Compute phase.
        for r in range(n):
            dt = self._compute_seconds(r)
            tl.events.append(Event(r, "compute", t[r], t[r] + dt))
            t[r] += dt

        # Per-dimension exchange ladder: pack once, then two shift phases
        # (send low / recv high, then send high / recv low).  A rank's
        # ``MPI_Sendrecv`` completes when it, the sender of its incoming
        # message, and the receiver of its outgoing message have all
        # reached the phase — a one-hop rendezvous with no chains, which
        # is how the shift pattern behaves in practice.
        for axis in range(3):
            cur = t.copy()
            for r in range(n):
                nbytes = self._face_bytes(r, axis)
                pack_dt = self._pack_seconds(nbytes)
                tl.events.append(Event(r, "pack", cur[r], cur[r] + pack_dt))
                cur[r] += pack_dt
                if not self.gpu_aware:
                    stage_dt = self._stage_seconds(nbytes)
                    tl.events.append(Event(r, "stage", cur[r], cur[r] + stage_dt))
                    cur[r] += stage_dt

            for send_side in (-1, 1):
                starts = cur.copy()
                next_cur = cur.copy()
                for r in range(n):
                    to = self.decomp.neighbor(r, axis, send_side)
                    frm = self.decomp.neighbor(r, axis, -send_side)
                    if to is None and frm is None:
                        continue
                    start = starts[r]
                    for partner in (to, frm):
                        if partner is not None:
                            start = max(start, starts[partner])
                    if start > starts[r]:
                        tl.events.append(Event(r, "idle", starts[r], start))
                    nbytes = self._face_bytes(r, axis)
                    wire_dt = self._wire_seconds(r, frm if frm is not None else to,
                                                 nbytes, nnodes)
                    done = start + wire_dt
                    tl.events.append(Event(r, "wire", start, done))
                    if frm is not None:  # something arrived to unpack
                        if not self.gpu_aware:
                            stage_dt = self._stage_seconds(nbytes)
                            tl.events.append(Event(r, "stage", done,
                                                   done + stage_dt))
                            done += stage_dt
                        unpack_dt = self._pack_seconds(nbytes) * 0.5
                        tl.events.append(Event(r, "unpack", done,
                                               done + unpack_dt))
                        done += unpack_dt
                    next_cur[r] = done
                cur = next_cur
            t = cur

        tl.finish = float(t.max())
        return tl

    def simulate_step(self, *, rhs_evals: int = 3) -> StepTimeline:
        """A full SSP-RK step: RHS timelines back to back."""
        total = StepTimeline(nranks=self.decomp.nranks)
        offset = 0.0
        for _ in range(rhs_evals):
            tl = self.simulate_rhs()
            for e in tl.events:
                total.events.append(Event(e.rank, e.kind, e.start + offset,
                                          e.end + offset))
            offset += tl.finish
        total.finish = offset
        return total
