"""Real multi-process distributed runs with shared-memory halo exchange.

This is the executable counterpart of the analytic cluster models: one
OS process per rank of the 3D block decomposition, each running a
:class:`~repro.cluster.ranksolver.RankSolver` over its own block, with
halo buffers packed zero-copy into ``multiprocessing.shared_memory``
segments and exchanged through a lightweight mailbox protocol (the
single-node stand-in for ``MPI_Sendrecv``).

Mailbox protocol
----------------
Every neighboured ``(rank, axis, side)`` gets a boundary-strip-shaped
mailbox in the arena plus two int64 sequence words:

* the **producer** (the strip's owner) waits until ``ack >= s - 1``
  (the consumer finished with the previous exchange), writes the strip
  directly into the shared segment, then publishes ``post = s``;
* the **consumer** (the neighbour) waits until ``post >= s``, unpacks
  the strip into its ghost layer, then publishes ``ack = s``.

Posts of exchange ``s`` wait only on fills of ``s - 1`` and fills of
``s`` wait only on posts of ``s``, so the dependency graph is acyclic —
no deadlock for any decomposition, periodic or not.  Waits spin with a
deadline and are tallied in :class:`~repro.profiling.counters.
HaloCounters` (``waits``/``wait_ns`` — the un-hidden communication the
interior-compute overlap exists to shrink).

Plain stores give no cross-process ordering on weakly-ordered CPUs
(aarch64), so every sequence word is *published* inside a per-mailbox
``multiprocessing.Lock`` critical section and every successful wait is
followed by an acquire/release round-trip of the same lock before the
payload is touched.  The waiter's acquire synchronises with the
publisher's release (the sequence word was stored while the lock was
held), so payload stores made before the publish happen-before payload
loads made after the fence — a seqlock with the fences made explicit.
The spin itself stays lock-free; the lock round-trip costs one
semaphore pair per exchange, not per spin.

The per-step dt reduction reuses the same idea with one slot, one
write-sequence word, one read-sequence word, and one lock per rank;
every rank computes ``max`` over the slots in the same order, so all
ranks adopt a bitwise-identical dt (max is exact in floating point).

Liveness is monitored through a per-rank heartbeat word bumped on
every completed step and transport operation; the parent's join loop
only arms its no-progress deadline when *nothing* moved (no heartbeat,
no result, no exit), so the deadline bounds a hang, never the length
of a legitimate run.

Fault tolerance
---------------
Each rank writes its own rotating :class:`~repro.io.checkpoint.
CheckpointManager` file (``rank0000_*.bin`` …, file-per-process — the
strategy MFC switched to at scale).  When a rank dies the parent
terminates the survivors, finds the newest step for which *every* rank
holds a checkpoint, builds a fresh arena, and respawns the cluster from
that step.  Restarted runs are bit-identical to failure-free ones
(every step is deterministic, so re-marching from step ``S`` reproduces
the same states).  Each call to :meth:`ProcessCluster.run` owns the
rank-prefixed checkpoint set: stale ``rank####_*`` files left in the
directory by a previous run are removed up front so only *this* run's
steps are restart candidates, and a rank death with checkpointing
disabled raises :class:`~repro.common.ClusterError` instead of
attempting a restart.  :class:`RankFault` injects a deterministic rank
death to exercise the path end to end; wire it from a
:class:`~repro.faults.ranks.RankFailurePlan` via
:meth:`RankFault.from_plan`.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import sys
import time
import traceback
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro.bc.boundary import BoundarySet
from repro.cluster.decomposition import BlockDecomposition
from repro.cluster.halo import boundary_strip, ghost_strip, validate_periodicity
from repro.cluster.ranksolver import RankSolver, rk_stages
from repro.common import DTYPE, ClusterError, ConfigurationError, NumericsError
from repro.eos.mixture import Mixture
from repro.grid.cartesian import StructuredGrid
from repro.io.checkpoint import CheckpointManager
from repro.profiling.counters import HaloCounters, SweepCounters
from repro.solver.rhs import RHSConfig
from repro.state.conversions import cons_to_prim
from repro.state.layout import StateLayout
from repro.weno import halo_width

#: Exit code a worker uses to simulate a hardware fault (vs. 1 for a
#: real Python error — both trigger the same restart path).
_FAULT_EXIT = 3

#: Per-rank checkpoint file names (any rank count, any step width) —
#: the prefix set each :meth:`ProcessCluster.run` owns in its
#: checkpoint directory.
_RANK_CKPT = re.compile(r"rank\d{4}_\d+\.bin")


@dataclass(frozen=True)
class RankFault:
    """Deterministic injected rank death: ``rank`` exits (as a crashed
    process would — no cleanup, no final checkpoint) right after
    completing step ``step`` (counted on the run's absolute step clock,
    i.e. including any ``base_step``).  Fires on the first attempt
    only, so the restarted run can finish."""

    rank: int
    step: int

    @classmethod
    def from_plan(cls, plan, *, step_seconds: float, nranks: int,
                  horizon_hours: float = 24.0) -> "RankFault | None":
        """Derive the first injected death from a PR-4
        :class:`~repro.faults.ranks.RankFailurePlan`.

        The plan's first failure time (hours) is converted to the step
        count a run with the given wall seconds-per-step would have
        reached; returns None when the plan predicts no failure inside
        the horizon."""
        times = plan.failure_times(horizon_hours)
        if not times:
            return None
        hours, rank = times[0]
        step = max(1, int(hours * 3600.0 / step_seconds))
        return cls(rank=rank % nranks, step=step)


class ShmArena:
    """One shared-memory segment holding every cross-process array.

    Layout (all 8-byte aligned, zero-initialised):

    * per-rank state blocks ``(nvars, *local_cells)`` float64 — the
      authoritative ``q`` each worker marches in place (the parent
      scatters the initial condition in and gathers the result out,
      zero-copy on the worker side);
    * per-``(rank, axis, side)`` halo mailboxes (boundary-strip shaped)
      with their ``post``/``ack`` sequence words;
    * the dt-reduction triple: ``slots`` float64 and
      ``wrote``/``read`` sequence words, one each per rank;
    * a per-rank ``beat`` heartbeat word (bumped by workers on every
      step and transport operation; the parent's liveness monitor).

    The arena also owns the protocol's synchronisation locks
    (:attr:`locks`): one per halo mailbox and one per rank for the dt
    reduction, inherited by the workers through fork.  Publishing a
    sequence word inside its lock and fencing through the same lock
    after a wait gives the payload hand-off a happens-before edge on
    weakly-ordered CPUs (see the module docstring).
    """

    def __init__(self, decomp: BlockDecomposition, nvars: int, ng: int, *,
                 red_width: int = 1):
        self.decomp = decomp
        self.nvars = nvars
        self.ng = ng
        if not isinstance(red_width, int) or isinstance(red_width, bool) \
                or red_width < 1:
            raise ConfigurationError(
                f"red_width must be a positive integer, got {red_width!r}")
        #: Payload width of one dt-reduction round: 1 for the scalar
        #: single-case rate, B for an ensemble's per-case dt vector.
        self.red_width = red_width
        self._slots: dict[object, tuple[int, tuple[int, ...], np.dtype]] = {}
        offset = 0

        def add(key, shape, dtype):
            nonlocal offset
            arr_bytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            self._slots[key] = (offset, tuple(shape), np.dtype(dtype))
            offset += arr_bytes

        ctx = multiprocessing.get_context("fork")
        #: Mailbox lock per ``(rank, axis, side)`` plus a reduction lock
        #: per ``("red", rank)`` — the protocol's explicit fences.
        self.locks: dict[tuple, object] = {}
        for r in range(decomp.nranks):
            add(("block", r), (nvars, *decomp.local_cells(r)), DTYPE)
        for r in range(decomp.nranks):
            local = decomp.local_cells(r)
            for axis in range(decomp.ndim):
                for side in (-1, 1):
                    if decomp.neighbor(r, axis, side) is None:
                        continue
                    shape = [nvars, *local]
                    shape[axis + 1] = ng
                    add(("box", r, axis, side), shape, DTYPE)
                    add(("post", r, axis, side), (1,), np.int64)
                    add(("ack", r, axis, side), (1,), np.int64)
                    self.locks[(r, axis, side)] = ctx.Lock()
        add("slots", (decomp.nranks, red_width), DTYPE)
        add("wrote", (decomp.nranks,), np.int64)
        add("read", (decomp.nranks,), np.int64)
        add("beat", (decomp.nranks,), np.int64)
        for r in range(decomp.nranks):
            self.locks[("red", r)] = ctx.Lock()

        self.shm = shared_memory.SharedMemory(create=True, size=max(offset, 8))
        np.frombuffer(self.shm.buf, dtype=np.uint8, count=offset)[:] = 0

    def view(self, key) -> np.ndarray:
        offset, shape, dtype = self._slots[key]
        return np.ndarray(shape, dtype=dtype, buffer=self.shm.buf,
                          offset=offset)

    def block(self, rank: int) -> np.ndarray:
        return self.view(("block", rank))

    def close(self) -> None:
        self.shm.close()

    def destroy(self) -> None:
        self.shm.close()
        self.shm.unlink()


class SharedMemoryTransport:
    """One worker's halo endpoint over the arena (see module docstring).

    Duck-type compatible with :class:`~repro.cluster.halo.HaloExchanger`
    as a :class:`RankSolver` transport: :meth:`post` packs boundary
    strips straight into the shared mailboxes, :meth:`fill` completes
    the sendrecv into the ghost layers.
    """

    def __init__(self, arena: ShmArena, rank: int, *,
                 timeout: float = 30.0) -> None:
        self.arena = arena
        self.decomp = arena.decomp
        self.rank = rank
        self.ng = arena.ng
        self.timeout = timeout
        self.counters = HaloCounters()
        # Exchange sequence numbers, tracked independently by producer
        # and consumer — both sides perform exactly one exchange per
        # RHS evaluation, so the counts agree by construction.
        self._posted: dict[tuple[int, int], int] = {}
        self._filled: dict[tuple[int, int], int] = {}
        self._reduced = 0
        self._slots = arena.view("slots")
        self._wrote = arena.view("wrote")
        self._read = arena.view("read")
        self._beat = arena.view("beat")
        self._locks = arena.locks
        # Views are materialised once; post/fill then touch only numpy
        # arrays already mapped over the shared segment.
        self._view: dict[tuple, np.ndarray] = {}
        for r in range(self.decomp.nranks):
            for axis in range(self.decomp.ndim):
                for side in (-1, 1):
                    if self.decomp.neighbor(r, axis, side) is None:
                        continue
                    for kind in ("box", "post", "ack"):
                        key = (kind, r, axis, side)
                        self._view[key] = arena.view(key)

    # ------------------------------------------------------------------
    def beat(self) -> None:
        """Bump this rank's heartbeat (the parent's liveness signal)."""
        self._beat[self.rank] += 1

    def _acquire(self, lock, what: str):
        if not lock.acquire(timeout=self.timeout):
            raise ClusterError(
                f"rank {self.rank}: timed out after {self.timeout}s "
                f"acquiring the lock for {what} — a peer rank likely died "
                f"holding it")
        return lock

    def _fence(self, lock, what: str) -> None:
        """Acquire/release ``lock`` once: pairs with the publisher's
        release so payload stores made before the publish are visible
        to payload loads made after this call (weak-memory fence)."""
        self._acquire(lock, what).release()

    def _publish(self, lock, seq: np.ndarray, index: int, value: int,
                 what: str) -> None:
        """Store ``seq[index] = value`` inside the lock (release-publish)."""
        self._acquire(lock, what)
        try:
            seq[index] = value
        finally:
            lock.release()

    def _wait(self, seq: np.ndarray, value: int, what: str, lock) -> None:
        """Spin until ``seq[0] >= value`` (with deadline), then fence
        through ``lock`` before the caller touches the payload."""
        if seq[0] < value:
            t0 = time.perf_counter_ns()
            deadline = t0 + int(self.timeout * 1e9)
            self.counters.waits += 1
            spins = 0
            while seq[0] < value:
                spins += 1
                # Yield aggressively once it is clearly not a micro-wait
                # so oversubscribed single-core hosts make progress.
                time.sleep(0 if spins < 200 else 5e-5)
                if time.perf_counter_ns() > deadline:
                    raise ClusterError(
                        f"rank {self.rank}: timed out after {self.timeout}s "
                        f"waiting for {what} (seq {seq[0]} < {value}) — a "
                        f"peer rank likely died")
            self.counters.wait_ns += time.perf_counter_ns() - t0
        self._fence(lock, what)

    # ------------------------------------------------------------------
    def post(self, rank: int, axis: int, field: np.ndarray) -> None:
        """Pack ``rank``'s boundary strips along ``axis`` into shared
        mailboxes (zero-copy: the strided copy's destination *is* the
        shared segment)."""
        ng = self.ng
        seq = self._posted.get((rank, axis), 0) + 1
        for side in (-1, 1):
            if self.decomp.neighbor(rank, axis, side) is None:
                continue
            lock = self._locks[(rank, axis, side)]
            self._wait(self._view[("ack", rank, axis, side)], seq - 1,
                       f"ack of exchange {seq - 1} on axis {axis}", lock)
            box = self._view[("box", rank, axis, side)]
            box[...] = boundary_strip(field, axis, ng, side)
            self._publish(lock, self._view[("post", rank, axis, side)], 0,
                          seq, f"post {seq} on axis {axis}")
            self.counters.posts += 1
        self._posted[(rank, axis)] = seq
        self.beat()

    def fill(self, rank: int, axis: int, padded: np.ndarray) -> None:
        """Fill ``rank``'s interior-face ghosts along ``axis`` from the
        neighbours' shared mailboxes."""
        ng = self.ng
        seq = self._filled.get((rank, axis), 0) + 1
        for side in (-1, 1):
            nb = self.decomp.neighbor(rank, axis, side)
            if nb is None:
                continue
            lock = self._locks[(nb, axis, -side)]
            self._wait(self._view[("post", nb, axis, -side)], seq,
                       f"post {seq} from rank {nb} on axis {axis}", lock)
            box = self._view[("box", nb, axis, -side)]
            ghost_strip(padded, axis, ng, side)[...] = box
            self._publish(lock, self._view[("ack", nb, axis, -side)], 0,
                          seq, f"ack {seq} to rank {nb} on axis {axis}")
            self.counters.messages += 1
            self.counters.bytes_exchanged += box.nbytes
        self._filled[(rank, axis)] = seq
        self.beat()

    # ------------------------------------------------------------------
    def reduce_max_begin(self, value) -> None:
        """Post this rank's contribution to the next max-reduction.

        The nonblocking half of :meth:`reduce_max` (``MPI_Iallreduce``'s
        start): waits until every rank consumed the *previous* round,
        publishes ``value`` in this rank's slot, and returns — the
        caller overlaps independent compute (the first RK stage's RHS,
        which does not depend on dt) before collecting the result with
        :meth:`reduce_max_finish`.

        ``value`` may be a scalar (broadcast across the slot row) or a
        vector of the arena's ``red_width`` — the latter carries an
        ensemble's per-case dt payload through one reduction round.
        """
        s = self._reduced + 1
        for r in range(self.decomp.nranks):
            self._wait(self._read[r:r + 1], s - 1,
                       f"rank {r} to consume reduction {s - 1}",
                       self._locks[("red", r)])
        self._slots[self.rank, :] = value
        self._publish(self._locks[("red", self.rank)], self._wrote,
                      self.rank, s, f"reduction value {s}")
        self.beat()

    def reduce_max_finish(self, *, overlapped: bool = False) -> float:
        """Complete the reduction started by :meth:`reduce_max_begin`.

        Waits for every rank's slot of this round, takes the
        elementwise max in rank order — bitwise identical on every
        rank, and bitwise equal to the serial whole-domain max
        (floating max is exact under any grouping) — then releases the
        slots for the next round.  Returns a float for width-1 arenas
        (the historical scalar contract) and the reduced vector for
        wider payloads.  ``overlapped=True`` tallies the reduction as
        hidden behind compute
        (:attr:`HaloCounters.reductions_overlapped`).
        """
        s = self._reduced + 1
        n = self.decomp.nranks
        for r in range(n):
            self._wait(self._wrote[r:r + 1], s,
                       f"rank {r}'s reduction value {s}",
                       self._locks[("red", r)])
        row = self._slots[0].copy()
        for r in range(1, n):
            np.maximum(row, self._slots[r], out=row)
        self._publish(self._locks[("red", self.rank)], self._read,
                      self.rank, s, f"reduction consume {s}")
        self._reduced = s
        self.counters.reductions += 1
        if overlapped:
            self.counters.reductions_overlapped += 1
        self.beat()
        return float(row[0]) if row.shape[0] == 1 else row

    def reduce_max(self, value: float) -> float:
        """Blocking cluster-wide max: begin + finish back to back."""
        self.reduce_max_begin(value)
        return self.reduce_max_finish()


@dataclass(frozen=True)
class ClusterResult:
    """What one multi-process run produced.  ``time``/``step_count``
    (and the history/checkpoint records behind them) are absolute —
    they include the ``base_time``/``base_step`` the run was seeded
    with."""

    q: np.ndarray
    time: float
    step_count: int
    halo: HaloCounters
    sweep: SweepCounters
    #: Per-step ``(step, time, dt, wall_seconds)`` tuples from rank 0.
    history: tuple[tuple[int, float, float, float], ...]
    restarts: int
    limited_faces: int


def _worker(arena: ShmArena, rank: int, grid: StructuredGrid,
            layout: StateLayout, mixture: Mixture, bcs: BoundarySet,
            config: RHSConfig, opts: dict, attempt: int,
            restore_step: int | None, conn) -> None:
    """One rank's process body (fork-inherited arguments, no pickling)."""
    try:
        transport = SharedMemoryTransport(arena, rank,
                                          timeout=opts["timeout"])
        rs = RankSolver(arena.decomp, rank, layout, mixture, bcs, config,
                        grid, transport, sweep_layout=opts["sweep_layout"],
                        overlap=opts["overlap"], fusion=opts["fusion"])
        q = arena.block(rank)
        mgr = None
        if opts["checkpoint_dir"] is not None:
            mgr = CheckpointManager(opts["checkpoint_dir"],
                                    keep=opts["checkpoint_keep"],
                                    prefix=f"rank{rank:04d}")
        # The march runs on the driver's absolute clock: checkpoint
        # headers and history records carry the same time/step a serial
        # Simulation would, even when the cluster continues a run that
        # already advanced to base_time/base_step.
        sim_time = opts["base_time"]
        step_count = opts["base_step"]
        if restore_step is not None:
            from repro.io.binary import read_snapshot

            header, saved = read_snapshot(mgr.path_for(restore_step))
            q[...] = saved
            sim_time = header.time
            step_count = header.step

        fault = opts["fault"]
        stages = rk_stages(opts["rk_order"])
        history = []

        def march_one(dt_limit=None):
            nonlocal sim_time, step_count
            t0 = time.perf_counter()
            # One cons_to_prim serves the dt computation and RK stage
            # one, exactly as the serial driver shares them.
            prim0 = cons_to_prim(layout, mixture, q, out=rs.ws.prim)
            if opts["fixed_dt"] is not None:
                dt = opts["fixed_dt"]
                if dt_limit is not None and dt > dt_limit:
                    dt = dt_limit
            else:
                # Post the local wave rate now and collect the global
                # max only once stage one's RHS — which does not depend
                # on dt — is done, so the other ranks' contributions
                # arrive while this rank computes.  dt is first consumed
                # by rk_stage_combine, after the deferred finish; the
                # reduction order and values are unchanged, so the
                # overlapped dt is bitwise identical to the blocking one.
                transport.reduce_max_begin(rs.wave_rate(prim0))
                dt = None
            q_n = q
            q_k = q
            for k, coeffs in enumerate(stages):
                prim = rs.rhs_begin(q_k, prim=prim0 if k == 0 else None)
                L = rs.rhs_finish(prim)
                if dt is None:
                    rate = transport.reduce_max_finish(overlapped=True)
                    if not np.isfinite(rate) or rate <= 0.0:
                        raise NumericsError(
                            f"invalid maximum wave rate {rate}")
                    dt = opts["cfl"] / rate
                    if dt_limit is not None and dt > dt_limit:
                        dt = dt_limit
                q_k = rs.rk_stage_combine(k, len(stages), coeffs, dt,
                                          q_n, q_k, L)
            q[...] = q_k
            sim_time += dt
            step_count += 1
            history.append((step_count, sim_time, dt,
                            time.perf_counter() - t0))
            transport.beat()
            if (fault is not None and attempt == 0
                    and rank == fault.rank and step_count == fault.step):
                # Die as a crashed process would: no cleanup, no final
                # checkpoint, peers left mid-protocol.
                os._exit(_FAULT_EXIT)
            if (mgr is not None and opts["checkpoint_every"]
                    and step_count % opts["checkpoint_every"] == 0):
                mgr.save(q, step=step_count, time=sim_time)

        if opts["n_steps"] is not None:
            end_step = opts["base_step"] + opts["n_steps"]
            while step_count < end_step:
                march_one()
        else:
            t_end = opts["t_end"]
            while sim_time < t_end * (1.0 - 1e-12):
                march_one(dt_limit=t_end - sim_time)

        conn.send({
            "rank": rank,
            "time": sim_time,
            "step_count": step_count,
            "halo": transport.counters.as_dict(),
            "sweep": rs.sweep_counters.as_dict(),
            "limited_faces": rs.limited_faces,
            "history": history if rank == 0 else [],
        })
        conn.close()
    except BaseException:
        traceback.print_exc(file=sys.stderr)
        os._exit(1)


# ----------------------------------------------------------------------
def drain_and_join(
    procs, pipes, beat, grace: float, *, wall_deadline: float | None = None,
) -> tuple[list[dict] | None, tuple[int, int] | None]:
    """Wait for every worker, receiving results as they arrive.

    Results are drained *while* joining: a worker's result can outgrow
    the OS pipe buffer, in which case the worker blocks in ``send`` and
    only exits once the parent has received — recv-after-join would
    deadlock.

    The no-progress deadline (``grace`` seconds) is re-armed on any
    observed progress — an advance of the shared-memory ``beat`` array,
    a result arriving, a worker exiting — so it bounds how long the
    workers may sit *stuck*, never the wall time of a legitimately long
    run.  ``wall_deadline`` (a ``time.monotonic()`` instant) optionally
    bounds the total wait regardless of progress.  On the first failure
    — nonzero exit, clean exit without a result, no-progress expiry
    ``(-1, -1)``, or wall expiry ``(-1, -2)`` — the survivors are
    terminated (they would otherwise spin until their own wait
    deadlines) and ``(None, (index, exitcode))`` is returned; a clean
    join returns ``(results, None)`` with results in worker order.

    Shared by :class:`ProcessCluster` (per-rank heartbeats) and the
    ensemble batch supervisor (one heartbeat per batch child).
    """
    last_beat = np.array(beat, copy=True)
    deadline = time.monotonic() + grace
    pending = dict(enumerate(procs))
    results: dict[int, dict] = {}
    failed = None
    while pending and failed is None:
        progress = False
        for r, p in list(pending.items()):
            conn = pipes[r]
            if r not in results and conn.poll(0):
                try:
                    results[r] = conn.recv()
                    progress = True
                except EOFError:
                    pass  # died before sending; exitcode handles it
            p.join(timeout=0.02)
            if p.exitcode is None:
                continue
            del pending[r]
            progress = True
            if r not in results and conn.poll(0):
                try:
                    results[r] = conn.recv()
                except EOFError:
                    pass
            if p.exitcode != 0:
                failed = (r, p.exitcode)
            elif r not in results:
                # Exited cleanly without reporting — unusable run.
                failed = (r, 0)
        if not np.array_equal(beat, last_beat):
            np.copyto(last_beat, beat)
            progress = True
        if progress:
            deadline = time.monotonic() + grace
        elif time.monotonic() > deadline:
            failed = (-1, -1)
        if failed is None and wall_deadline is not None \
                and time.monotonic() > wall_deadline:
            failed = (-1, -2)
    if failed is None:
        return [results[r] for r in sorted(results)], None
    for p in pending.values():
        p.terminate()
        p.join()
    return None, failed


@dataclass
class ProcessCluster:
    """Multi-process executor for the 3D block decomposition.

    Runs ``decomp.nranks`` worker processes (fork start method) over a
    shared-memory arena and marches them bulk-synchronously via the
    mailbox protocol.  Results are bit-identical to the single-block
    :class:`~repro.solver.simulation.Simulation` and to the in-process
    :class:`~repro.cluster.distributed.DistributedSolver` — including
    across an injected rank failure recovered through
    checkpoint-coordinated restart.
    """

    grid: StructuredGrid
    layout: StateLayout
    mixture: Mixture
    bcs: BoundarySet
    decomp: BlockDecomposition
    config: RHSConfig
    cfl: float = 0.5
    fixed_dt: float | None = None
    rk_order: int = 3
    sweep_layout: str = "strided"
    overlap: bool = True
    #: Kernel-fusion mode forwarded to every rank's
    #: :class:`~repro.cluster.ranksolver.RankSolver` (``"off"`` /
    #: ``"on"`` / ``"auto"``; see :mod:`repro.acc.fusion`).
    fusion: str = "off"
    checkpoint_every: int = 0
    checkpoint_dir: str | Path | None = None
    checkpoint_keep: int = 3
    fault: RankFault | None = None
    max_restarts: int = 1
    #: Halo-wait spin deadline (seconds); the parent's join loop uses
    #: ``timeout + 60`` as its *no-progress* deadline — re-armed on
    #: every observed heartbeat/result/exit, so it bounds a hang, not
    #: the wall time of a legitimate run.
    timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ConfigurationError(
                f"timeout must be positive, got {self.timeout}")
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.decomp.global_cells != self.grid.shape:
            raise ConfigurationError(
                f"decomposition covers {self.decomp.global_cells}, "
                f"grid has {self.grid.shape}")
        validate_periodicity(self.decomp, self.bcs)
        if self.checkpoint_every and self.checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires a checkpoint_dir")
        if self.fault is not None and not self.checkpoint_every:
            raise ConfigurationError(
                "fault injection requires checkpointing "
                "(set checkpoint_every and checkpoint_dir)")
        if not 0 <= getattr(self.fault, "rank", 0) < self.decomp.nranks:
            raise ConfigurationError(
                f"fault rank {self.fault.rank} outside "
                f"0..{self.decomp.nranks - 1}")
        # Validate numerics knobs up front (in-process, good tracebacks)
        # by building rank 0's solver against a throwaway transport.
        rk_stages(self.rk_order)
        RankSolver(self.decomp, 0, self.layout, self.mixture, self.bcs,
                   self.config, self.grid, transport=None,
                   sweep_layout=self.sweep_layout, overlap=self.overlap,
                   fusion=self.fusion)

    # ------------------------------------------------------------------
    def _opts(self, *, t_end, n_steps, base_time, base_step) -> dict:
        return {
            "cfl": self.cfl, "fixed_dt": self.fixed_dt,
            "rk_order": self.rk_order, "sweep_layout": self.sweep_layout,
            "overlap": self.overlap, "fusion": self.fusion,
            "timeout": self.timeout,
            "checkpoint_every": self.checkpoint_every,
            "checkpoint_dir": (str(self.checkpoint_dir)
                               if self.checkpoint_dir is not None else None),
            "checkpoint_keep": self.checkpoint_keep, "fault": self.fault,
            "t_end": t_end, "n_steps": n_steps,
            "base_time": base_time, "base_step": base_step,
        }

    def _discard_stale_checkpoints(self) -> None:
        """Remove rank checkpoints left by a previous run.

        Each :meth:`run` owns the ``rank####_*`` prefix set in its
        checkpoint directory: a stale file from an earlier run would
        otherwise win ``max(common)`` during restart coordination and
        silently resume this run from an unrelated, higher-step state.
        """
        if self.checkpoint_dir is None:
            return
        directory = Path(self.checkpoint_dir)
        if not directory.is_dir():
            return
        for p in directory.iterdir():
            if _RANK_CKPT.fullmatch(p.name):
                p.unlink(missing_ok=True)

    def _common_checkpoint_step(self) -> int:
        """Newest step for which every rank holds a checkpoint file."""
        if self.checkpoint_dir is None:
            raise ClusterError(
                "a rank died but checkpointing is disabled (no "
                "checkpoint_dir) — cannot coordinate a restart; enable "
                "checkpoint_every/checkpoint_dir to make rank failures "
                "recoverable")
        common: set[int] | None = None
        for r in range(self.decomp.nranks):
            mgr = CheckpointManager(self.checkpoint_dir,
                                    keep=self.checkpoint_keep,
                                    prefix=f"rank{r:04d}")
            steps = {int(p.stem.split("_")[-1]) for p in mgr.checkpoints()}
            common = steps if common is None else common & steps
        if not common:
            raise ClusterError(
                "restart needed but no checkpoint step is present on "
                "every rank")
        return max(common)

    def run(self, q0: np.ndarray, *, t_end: float | None = None,
            n_steps: int | None = None, base_time: float = 0.0,
            base_step: int = 0) -> ClusterResult:
        """March ``q0`` and gather the final global field.

        Exactly one of ``t_end``/``n_steps``; semantics match
        :meth:`Simulation.run` (final step clipped onto ``t_end``, with
        ``t_end`` an *absolute* horizon when ``base_time`` is given).
        ``base_time``/``base_step`` seed the workers' clock so
        checkpoint headers, history records, and the returned
        time/step are absolute — a cluster continuing a driver that
        already marched to step ``S`` records step ``S + 1`` next, not
        ``1``.  Survives up to ``max_restarts`` rank deaths via
        checkpoint-coordinated restart; stale rank checkpoints from a
        previous run in the same directory are discarded up front (see
        :meth:`_discard_stale_checkpoints`).
        """
        if (t_end is None) == (n_steps is None):
            raise ConfigurationError("specify exactly one of t_end or n_steps")
        if q0.shape != (self.layout.nvars, *self.grid.shape):
            raise ConfigurationError(
                f"q0 has shape {q0.shape}, expected "
                f"{(self.layout.nvars, *self.grid.shape)}")
        self._discard_stale_checkpoints()
        ctx = multiprocessing.get_context("fork")
        opts = self._opts(t_end=t_end, n_steps=n_steps,
                          base_time=base_time, base_step=base_step)
        restarts = 0
        restore_step = None
        while True:
            arena = ShmArena(self.decomp, self.layout.nvars,
                             halo_width(self.config.weno_order))
            pipes, procs = [], []
            try:
                for r in range(self.decomp.nranks):
                    arena.block(r)[...] = q0[
                        (slice(None), *self.decomp.local_slices(r))]
                for r in range(self.decomp.nranks):
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    p = ctx.Process(
                        target=_worker,
                        args=(arena, r, self.grid, self.layout, self.mixture,
                              self.bcs, self.config, opts, restarts,
                              restore_step, child_conn),
                        daemon=True)
                    p.start()
                    child_conn.close()
                    pipes.append(parent_conn)
                    procs.append(p)
                results, failed = self._join_and_drain(procs, pipes, arena)
                if failed is None:
                    return self._collect(arena, results, restarts)
            finally:
                for conn in pipes:
                    conn.close()
                arena.destroy()
            restarts += 1
            if restarts > self.max_restarts:
                raise ClusterError(
                    f"rank {failed[0]} exited with code {failed[1]} and "
                    f"max_restarts={self.max_restarts} exhausted")
            restore_step = self._common_checkpoint_step()

    # ------------------------------------------------------------------
    def _join_and_drain(
        self, procs, pipes, arena: ShmArena,
    ) -> tuple[list[dict] | None, tuple[int, int] | None]:
        """Wait for every worker through :func:`drain_and_join`, with
        the arena's per-rank heartbeat words as the progress signal and
        ``timeout + 60`` as the no-progress grace window."""
        return drain_and_join(procs, pipes, arena.view("beat"),
                              grace=self.timeout + 60.0)

    def _collect(self, arena: ShmArena, results: list[dict],
                 restarts: int) -> ClusterResult:
        q = np.empty((self.layout.nvars, *self.grid.shape), dtype=DTYPE)
        for r in range(self.decomp.nranks):
            q[(slice(None), *self.decomp.local_slices(r))] = arena.block(r)
        halo = HaloCounters()
        sweep = SweepCounters()
        history: list = []
        limited = 0
        for res in results:
            halo.merge(HaloCounters(**res["halo"]))
            sweep.merge(SweepCounters(**res["sweep"]))
            limited += res["limited_faces"]
            if res["rank"] == 0:
                history = res["history"]
        r0 = next(res for res in results if res["rank"] == 0)
        return ClusterResult(
            q=q, time=r0["time"], step_count=r0["step_count"], halo=halo,
            sweep=sweep, history=tuple(tuple(h) for h in history),
            restarts=restarts, limited_faces=limited)
