"""Distributed (multi-rank, in-process) version of the solver.

Runs the same numerics as :class:`repro.solver.simulation.Simulation`
over a :class:`~repro.cluster.decomposition.BlockDecomposition`, with
ghost values at interior faces supplied by the functional halo exchange
instead of physical BCs.  A decomposed run reproduces the single-block
run bit for bit (tests assert this), which is the correctness property
that makes the paper's weak/strong-scaling numbers meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bc.boundary import BoundarySet
from repro.cluster.decomposition import BlockDecomposition
from repro.cluster.halo import HaloExchanger
from repro.common import ConfigurationError
from repro.eos.mixture import Mixture
from repro.grid.cartesian import StructuredGrid
from repro.riemann import SOLVERS
from repro.solver.positivity import limit_face_states
from repro.solver.rhs import RHSConfig
from repro.state.conversions import cons_to_prim
from repro.state.layout import StateLayout
from repro.timestepping.ssp_rk import SSP_SCHEMES
from repro.weno import halo_width, reconstruct_faces


@dataclass
class DistributedSolver:
    """Block-decomposed five-equation solver over simulated ranks."""

    grid: StructuredGrid
    layout: StateLayout
    mixture: Mixture
    bcs: BoundarySet
    decomp: BlockDecomposition
    config: RHSConfig = field(default_factory=RHSConfig)

    def __post_init__(self) -> None:
        if self.decomp.global_cells != self.grid.shape:
            raise ConfigurationError(
                f"decomposition covers {self.decomp.global_cells}, "
                f"grid has {self.grid.shape}")
        self._ng = halo_width(self.config.weno_order)
        self._riemann = SOLVERS[self.config.riemann_solver]
        self.halo = HaloExchanger(self.decomp, self.layout, self.bcs, self._ng)
        # Per-rank width fields, sliced from the global grid.
        self._widths: list[tuple[np.ndarray, ...]] = []
        for r in range(self.decomp.nranks):
            slices = self.decomp.local_slices(r)
            per_axis = []
            for d in range(self.grid.ndim):
                w = self.grid.widths(d)[slices[d]]
                newshape = [1] * self.grid.ndim
                newshape[d] = w.size
                per_axis.append(w.reshape(newshape))
            self._widths.append(tuple(per_axis))

    # ------------------------------------------------------------------
    def rhs_blocks(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Per-rank ``dq/dt``, with halo exchange before each sweep."""
        lay = self.layout
        prims = [cons_to_prim(lay, self.mixture, b) for b in blocks]
        dqdts = [np.zeros_like(b) for b in blocks]
        divus = [np.zeros(b.shape[1:], dtype=b.dtype) for b in blocks]

        for d in range(lay.ndim):
            padded = self.halo.padded_axis(prims, d)
            for r in range(self.decomp.nranks):
                v_l, v_r = reconstruct_faces(padded[r], d + 1, self.config.weno_order)
                limit_face_states(lay, self.mixture, padded[r], v_l, v_r,
                                  d, self._ng)
                flux, u_face = self._riemann(lay, self.mixture, v_l, v_r, d)
                width = self._widths[r][d]
                dqdts[r] -= np.diff(flux, axis=d + 1) / width
                divus[r] += np.diff(u_face, axis=d) / width

        for r in range(self.decomp.nranks):
            dqdts[r][lay.advected] += prims[r][lay.advected] * divus[r]
        return dqdts

    def step_blocks(self, blocks: list[np.ndarray], dt: float,
                    rk_order: int = 3) -> list[np.ndarray]:
        """One SSP-RK step of every rank's block (bulk-synchronous)."""
        q_n = blocks
        q_k = blocks
        for a, b, c in SSP_SCHEMES[rk_order]:
            rhs = self.rhs_blocks(q_k)
            q_k = [a * qn + b * qk + (c * dt) * L
                   for qn, qk, L in zip(q_n, q_k, rhs)]
        return q_k

    # ------------------------------------------------------------------
    def run(self, q_global: np.ndarray, *, dt: float, n_steps: int,
            rk_order: int = 3) -> np.ndarray:
        """March a global field for ``n_steps`` and gather the result."""
        blocks = self.halo.split(q_global)
        for _ in range(n_steps):
            blocks = self.step_blocks(blocks, dt, rk_order)
        return self.halo.gather(blocks)
