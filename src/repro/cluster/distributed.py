"""Distributed (multi-rank, in-process) version of the solver.

Runs the same numerics as :class:`repro.solver.simulation.Simulation`
over a :class:`~repro.cluster.decomposition.BlockDecomposition`, with
ghost values at interior faces supplied by the functional halo exchange
instead of physical BCs.  A decomposed run reproduces the single-block
run bit for bit (tests assert this), which is the correctness property
that makes the paper's weak/strong-scaling numbers meaningful.

Each rank is a :class:`~repro.cluster.ranksolver.RankSolver` owning a
full :class:`~repro.solver.workspace.SolverWorkspace` for its block, so
steady-state RHS evaluations allocate nothing — the distributed analog
of the serial ``out=`` paths (and what the multi-process executor in
:mod:`repro.cluster.procs` runs one-per-process).  The in-process
driver is bulk-synchronous: within every RK stage all ranks post their
boundary strips (:meth:`RankSolver.rhs_begin`) before any rank fills
ghosts and sweeps (:meth:`RankSolver.rhs_finish`), the single-process
stand-in for the shared-memory mailbox ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bc.boundary import BoundarySet
from repro.cluster.decomposition import BlockDecomposition
from repro.cluster.halo import HaloExchanger
from repro.cluster.ranksolver import RankSolver, rk_stages
from repro.common import ConfigurationError
from repro.eos.mixture import Mixture
from repro.grid.cartesian import StructuredGrid
from repro.profiling.counters import SweepCounters
from repro.solver.rhs import RHSConfig
from repro.state.layout import StateLayout
from repro.weno import halo_width


@dataclass
class DistributedSolver:
    """Block-decomposed five-equation solver over simulated ranks."""

    grid: StructuredGrid
    layout: StateLayout
    mixture: Mixture
    bcs: BoundarySet
    decomp: BlockDecomposition
    config: RHSConfig = field(default_factory=RHSConfig)
    #: Sweep layout per rank — same knob (and bitwise-identity
    #: guarantee) as the serial solver's ``sweep_layout``.
    sweep_layout: str = "strided"
    #: Compute ghost-free interior faces before filling ghosts (the
    #: communication-hiding schedule the multi-process executor relies
    #: on).  Results are bitwise identical either way.
    overlap: bool = True

    def __post_init__(self) -> None:
        if self.decomp.global_cells != self.grid.shape:
            raise ConfigurationError(
                f"decomposition covers {self.decomp.global_cells}, "
                f"grid has {self.grid.shape}")
        self._ng = halo_width(self.config.weno_order)
        self.halo = HaloExchanger(self.decomp, self.layout, self.bcs, self._ng)
        self.ranks = [
            RankSolver(self.decomp, r, self.layout, self.mixture, self.bcs,
                       self.config, self.grid, self.halo,
                       sweep_layout=self.sweep_layout, overlap=self.overlap)
            for r in range(self.decomp.nranks)
        ]

    # ------------------------------------------------------------------
    def rhs_blocks(self, blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Per-rank ``dq/dt``, with halo exchange before each sweep.

        Returns each rank's workspace ``dqdt`` buffer (reused by the
        next call — copy if it must survive).  Steady state allocates
        no new large arrays.
        """
        prims = [rank.rhs_begin(q) for rank, q in zip(self.ranks, blocks)]
        return [rank.rhs_finish(prim)
                for rank, prim in zip(self.ranks, prims)]

    def step_blocks(self, blocks: list[np.ndarray], dt: float,
                    rk_order: int = 3) -> list[np.ndarray]:
        """One SSP-RK step of every rank's block (bulk-synchronous).

        Returns each rank's ``rk_result`` workspace buffer; the stage
        combinations replicate :func:`~repro.timestepping.ssp_rk.
        ssp_rk_step`'s exact ufunc grouping, so a decomposed step is
        bitwise the serial one.
        """
        stages = rk_stages(rk_order)
        q_n = blocks
        q_k = blocks
        for k, coeffs in enumerate(stages):
            rhs = self.rhs_blocks(q_k)
            q_k = [rank.rk_stage_combine(k, len(stages), coeffs, dt, qn, qk, L)
                   for rank, qn, qk, L in zip(self.ranks, q_n, q_k, rhs)]
        return q_k

    # ------------------------------------------------------------------
    def run(self, q_global: np.ndarray, *, dt: float, n_steps: int,
            rk_order: int = 3) -> np.ndarray:
        """March a global field for ``n_steps`` and gather the result."""
        blocks = self.halo.split(q_global)
        for _ in range(n_steps):
            stepped = self.step_blocks(blocks, dt, rk_order)
            for block, result in zip(blocks, stepped):
                block[...] = result
        return self.halo.gather(blocks)

    # ------------------------------------------------------------------
    def merged_sweep_counters(self) -> SweepCounters:
        """Cluster-wide sweep counters (sum over ranks)."""
        total = SweepCounters()
        for rank in self.ranks:
            total.merge(rank.sweep_counters)
        return total
