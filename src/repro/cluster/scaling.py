"""Weak and strong scaling experiment drivers (paper Figs. 2-4).

A scaling point combines

* per-device compute time from the kernel cost model over the MFC
  kernel suite (:mod:`repro.hardware.workloads`), and
* per-device halo-exchange time from the communication model, one
  exchange per RHS evaluation, sized by the actual block decomposition.

Weak scaling holds cells/device constant; strong scaling holds total
cells constant.  Efficiency is wall time of the base point divided by
wall time at each device count (weak), or ideal speedup over achieved
speedup (strong).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.decomposition import BlockDecomposition, factor3d
from repro.cluster.io_model import IOModel
from repro.cluster.mpi_sim import CommModel, NetworkModel, allreduce_time
from repro.cluster.resilience import (
    FailureModel,
    ResilientPoint,
    daly_interval,
    resilience_efficiency,
)
from repro.cluster.topology import MachineSpec
from repro.common import ConfigurationError
from repro.hardware.costmodel import CostModel
from repro.hardware.workloads import ProblemShape, rhs_workloads
from repro.weno import halo_width


@dataclass(frozen=True)
class ScalingPoint:
    """One (device count, wall time) sample of a scaling curve."""

    ndevices: int
    cells_per_device: float
    compute_seconds: float
    comm_seconds: float

    @property
    def step_seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds


@dataclass
class ScalingDriver:
    """Prices one time step at a sequence of device counts on one machine."""

    machine: MachineSpec
    gpu_aware: bool = True
    nvars: int = 7
    weno_order: int = 5
    rhs_evals: int = 3

    def __post_init__(self) -> None:
        self._cost = CostModel(self.machine.device, self.machine.compiler)
        self._ng = halo_width(self.weno_order)

    # ------------------------------------------------------------------
    def _point(self, ndevices: int, global_cells: tuple[int, int, int]) -> ScalingPoint:
        decomp = BlockDecomposition.balanced(global_cells, ndevices)
        local = decomp.local_cells(0)
        cells_local = 1
        for c in local:
            cells_local *= c

        shape = ProblemShape(cells=cells_local, nvars=self.nvars)
        compute = self._cost.suite_time(rhs_workloads(shape)) * self.rhs_evals

        comm = CommModel(self.machine, gpu_aware=self.gpu_aware)
        nnodes = max(1, ndevices // self.machine.devices_per_node)
        comm_time = comm.halo_exchange_time(
            local_cells=local, ng=self._ng, nvars=self.nvars,
            nnodes=nnodes,
            sides_per_axis=decomp.max_neighbors_per_axis()) * self.rhs_evals
        # Per-step dt allreduce (one per step, not per RHS evaluation),
        # priced with the same contention factor as the halo messages.
        comm_time += allreduce_time(NetworkModel.of(self.machine), ndevices,
                                    nnodes=nnodes)
        return ScalingPoint(ndevices, cells_local, compute, comm_time)

    @staticmethod
    def _cube_cells(total_cells: float) -> tuple[int, int, int]:
        edge = max(4, round(total_cells ** (1.0 / 3.0)))
        return (edge, edge, edge)

    # ------------------------------------------------------------------
    def weak_scaling(self, cells_per_device: int,
                     device_counts: list[int]) -> list[ScalingPoint]:
        """Fixed work per device; the global problem grows with the machine."""
        if not device_counts:
            raise ConfigurationError("need at least one device count")
        points = []
        for nd in device_counts:
            # Global domain: per-device cube tiled by the rank grid.
            edge = max(4, round(cells_per_device ** (1.0 / 3.0)))
            grid = factor3d(nd)
            global_cells = tuple(edge * g for g in grid)
            points.append(self._point(nd, global_cells))
        return points

    def strong_scaling(self, total_cells: float,
                       device_counts: list[int]) -> list[ScalingPoint]:
        """Fixed global problem split across growing device counts."""
        if not device_counts:
            raise ConfigurationError("need at least one device count")
        global_cells = self._cube_cells(total_cells)
        return [self._point(nd, global_cells) for nd in device_counts]

    # ------------------------------------------------------------------
    def resilient_weak_scaling(self, cells_per_device: int,
                               device_counts: list[int], *,
                               failures: FailureModel | None = None,
                               io: IOModel | None = None,
                               bytes_per_value: int = 8,
                               ) -> list[ResilientPoint]:
        """Weak scaling with fault tolerance priced in (paper regime:
        multi-day runs at thousands of nodes).

        Each point gets a per-checkpoint write time from the I/O model
        (file-per-process, the strategy MFC switched to at scale), a
        system MTBF from the failure model, the Daly-optimal interval,
        and the resulting resilience efficiency.  Combine with the
        network curve via :meth:`effective_efficiency`.
        """
        failures = failures or FailureModel()
        io = io or IOModel()
        out = []
        for p in self.weak_scaling(cells_per_device, device_counts):
            nnodes = max(1, p.ndevices // self.machine.devices_per_node)
            bytes_per_rank = p.cells_per_device * self.nvars * bytes_per_value
            delta = io.file_per_process_time(p.ndevices, bytes_per_rank)
            mtbf = failures.system_mtbf_seconds(nnodes)
            out.append(ResilientPoint(
                point=p, nnodes=nnodes, system_mtbf_seconds=mtbf,
                checkpoint_seconds=delta,
                checkpoint_interval_seconds=daly_interval(delta, mtbf),
                resilience_efficiency=resilience_efficiency(
                    checkpoint_seconds=delta, mtbf_seconds=mtbf,
                    restart_seconds=failures.restart_seconds)))
        return out

    @staticmethod
    def effective_efficiency(rpoints: list[ResilientPoint]) -> list[float]:
        """Weak-scaling efficiency x resilience efficiency per point.

        The headline number for a priced-resilience report: the
        fraction of perfect-scaling, failure-free throughput a real
        campaign at each device count retains.
        """
        if not rpoints:
            raise ConfigurationError("need at least one resilient point")
        base = rpoints[0].point.step_seconds
        return [base / rp.point.step_seconds * rp.resilience_efficiency
                for rp in rpoints]

    # ------------------------------------------------------------------
    @staticmethod
    def weak_efficiency(points: list[ScalingPoint]) -> list[float]:
        """Base wall time over wall time at each count (1.0 = perfect)."""
        base = points[0].step_seconds
        return [base / p.step_seconds for p in points]

    @staticmethod
    def strong_efficiency(points: list[ScalingPoint]) -> list[float]:
        """Achieved speedup over ideal speedup at each count."""
        base = points[0]
        out = []
        for p in points:
            ideal = p.ndevices / base.ndevices
            achieved = base.step_seconds / p.step_seconds
            out.append(achieved / ideal)
        return out
