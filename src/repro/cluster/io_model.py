"""Parallel I/O cost model (paper §III-A).

Two strategies the paper compares at scale:

* **Shared binary file (MPI-IO collective)** — all ranks write into one
  file.  Works well until file-system metadata and lock contention grow
  with rank count; the paper "witnessed increased I/O times when
  creating MPI I/O shared binary files" at 65,536 GCDs.
* **File per process, in waves** — each rank writes its own file, but
  only 128 ranks may open files simultaneously, each wave offset, so
  metadata creation does not overwhelm the file system.

The model prices both: shared-file time grows superlinearly with ranks
through a lock/metadata contention term, file-per-process pays a fixed
per-wave metadata cost but streams at the aggregate bandwidth cap.  The
crossover lands in the tens-of-thousands-of-ranks regime that motivated
MFC's switch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common import ConfigurationError


@dataclass(frozen=True)
class IOModel:
    """Lustre/GPFS-like parallel file system parameters."""

    aggregate_bandwidth_gbps: float = 2_000.0   # sustained write bandwidth
    metadata_op_us: float = 500.0               # one create/open metadata op
    shared_lock_us_per_rank: float = 40.0       # extent-lock contention per writer
    wave_size: int = 128                        # paper's access-wave width

    def __post_init__(self) -> None:
        if self.aggregate_bandwidth_gbps <= 0 or self.wave_size < 1:
            raise ConfigurationError("invalid I/O model parameters")

    # ------------------------------------------------------------------
    def shared_file_time(self, nranks: int, bytes_per_rank: float) -> float:
        """One collective write into a single shared binary file.

        Stream time at aggregate bandwidth plus lock/metadata contention
        that grows as ranks x log(ranks) — the classic shared-file
        scalability failure mode.
        """
        if nranks < 1 or bytes_per_rank < 0:
            raise ConfigurationError("invalid shared_file_time arguments")
        stream = nranks * bytes_per_rank / (self.aggregate_bandwidth_gbps * 1e9)
        contention = (self.shared_lock_us_per_rank * 1e-6
                      * nranks * math.log2(max(nranks, 2)))
        return self.metadata_op_us * 1e-6 + stream + contention

    def file_per_process_time(self, nranks: int, bytes_per_rank: float) -> float:
        """File-per-process writes throttled to ``wave_size`` concurrent opens.

        Each wave pays one metadata round (creates are concurrent within
        the wave, so the cost is per wave, not per rank); data streams
        at the aggregate bandwidth cap throughout.
        """
        if nranks < 1 or bytes_per_rank < 0:
            raise ConfigurationError("invalid file_per_process_time arguments")
        waves = math.ceil(nranks / self.wave_size)
        stream = nranks * bytes_per_rank / (self.aggregate_bandwidth_gbps * 1e9)
        return waves * self.metadata_op_us * 1e-6 + stream

    def crossover_ranks(self, bytes_per_rank: float, *, max_ranks: int = 1 << 20) -> int:
        """Smallest rank count where file-per-process beats the shared file."""
        n = 2
        while n <= max_ranks:
            if self.file_per_process_time(n, bytes_per_rank) < \
                    self.shared_file_time(n, bytes_per_rank):
                return n
            n *= 2
        return max_ranks
