"""Pricing fault tolerance at scale: MTBF, Young/Daly, restart loss.

The paper's 87%-efficiency Frontier runs only count the steps that
*survive*: at 8,192+ nodes the system MTBF drops to hours, and every
failure burns (a) the work since the last checkpoint and (b) a restart.
Checkpointing more often shrinks (a) but pays write time; the classic
Young/Daly analysis picks the interval balancing the two.  This module
prices that trade so :class:`~repro.cluster.scaling.ScalingDriver` can
report *effective* efficiency — network scaling x resilience waste —
at Frontier-like node counts.

Model
-----
With checkpoint write time ``delta``, restart time ``R``, and system
MTBF ``M`` (node MTBF / node count), a checkpoint interval ``tau``
wastes

    w(tau) = delta / (tau + delta)          (checkpoint overhead)
           + (tau / 2 + R) / M              (expected rework + restart)

and Daly's higher-order optimum (valid for ``delta < 2 M``) is

    tau* = sqrt(2 delta M) [1 + (1/3) sqrt(delta / 2M)
                              + (1/9) (delta / 2M)] - delta.

Efficiency is ``1 - w``; both are exposed analytically (property-tested
for monotonicity in MTBF) and as a deterministic event replay
(:func:`simulate_resilient_run`) driven by a seeded
:class:`~repro.faults.ranks.RankFailurePlan`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common import ConfigurationError


@dataclass(frozen=True)
class FailureModel:
    """Exponential node-failure statistics plus restart cost.

    ``node_mtbf_hours`` is per *node* (the unit that fails and is
    rebooted); ``restart_seconds`` covers relaunch, checkpoint re-read,
    and warmup.
    """

    node_mtbf_hours: float = 50_000.0
    restart_seconds: float = 180.0

    def __post_init__(self) -> None:
        if self.node_mtbf_hours <= 0.0:
            raise ConfigurationError(
                f"node_mtbf_hours must be positive, got {self.node_mtbf_hours}")
        if self.restart_seconds < 0.0:
            raise ConfigurationError(
                f"restart_seconds must be >= 0, got {self.restart_seconds}")

    def system_mtbf_seconds(self, nnodes: int) -> float:
        """Memoryless clocks compose: system MTBF = node MTBF / nodes."""
        if nnodes < 1:
            raise ConfigurationError(f"nnodes must be >= 1, got {nnodes}")
        return self.node_mtbf_hours * 3600.0 / nnodes

    def expected_failures(self, nnodes: int, duration_seconds: float) -> float:
        return duration_seconds / self.system_mtbf_seconds(nnodes)


# ----------------------------------------------------------------------
def daly_interval(checkpoint_seconds: float, mtbf_seconds: float) -> float:
    """Daly's optimal checkpoint interval (seconds of compute between
    checkpoints).

    Uses the higher-order perturbation solution (J. T. Daly, FGCS 2006);
    when the machine fails faster than twice the checkpoint write time
    (``delta >= 2 M``) no interval helps and the model degenerates to
    ``tau = M``.
    """
    delta, M = checkpoint_seconds, mtbf_seconds
    if delta < 0.0 or M <= 0.0:
        raise ConfigurationError(
            f"need checkpoint_seconds >= 0 and mtbf_seconds > 0, "
            f"got {delta}, {M}")
    if delta == 0.0:
        return 0.0
    if delta >= 2.0 * M:
        return M
    x = delta / (2.0 * M)
    return math.sqrt(2.0 * delta * M) * (1.0 + math.sqrt(x) / 3.0 + x / 9.0) - delta


def resilience_waste(*, checkpoint_seconds: float, mtbf_seconds: float,
                     restart_seconds: float,
                     interval_seconds: float | None = None) -> float:
    """Fraction of wall time lost to checkpoints, rework, and restarts.

    ``interval_seconds=None`` uses the Daly-optimal interval.  Clamped
    to [0, 1]; 1 means the machine fails faster than it can make
    progress.
    """
    delta, M, R = checkpoint_seconds, mtbf_seconds, restart_seconds
    tau = daly_interval(delta, M) if interval_seconds is None else interval_seconds
    if tau < 0.0:
        raise ConfigurationError(f"interval must be >= 0, got {tau}")
    waste = 0.0
    if tau + delta > 0.0:
        waste += delta / (tau + delta)
    waste += (tau / 2.0 + R) / M
    return min(1.0, max(0.0, waste))


def resilience_efficiency(*, checkpoint_seconds: float, mtbf_seconds: float,
                          restart_seconds: float,
                          interval_seconds: float | None = None) -> float:
    """``1 - resilience_waste`` — the fraction of wall doing new steps."""
    return 1.0 - resilience_waste(
        checkpoint_seconds=checkpoint_seconds, mtbf_seconds=mtbf_seconds,
        restart_seconds=restart_seconds, interval_seconds=interval_seconds)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResilientPoint:
    """One scaling point with fault tolerance priced in.

    Wraps the network-only :class:`~repro.cluster.scaling.ScalingPoint`
    with the node count, system MTBF, per-checkpoint write time (from
    the I/O model), the Daly-optimal checkpoint interval, and the
    resulting resilience efficiency.
    """

    point: "ScalingPoint"  # noqa: F821 — annotation only, no import cycle
    nnodes: int
    system_mtbf_seconds: float
    checkpoint_seconds: float
    checkpoint_interval_seconds: float
    resilience_efficiency: float

    @property
    def checkpoint_overhead(self) -> float:
        """Fraction of wall spent writing checkpoints at the Daly interval."""
        total = self.checkpoint_interval_seconds + self.checkpoint_seconds
        return self.checkpoint_seconds / total if total > 0.0 else 0.0

    @property
    def effective_step_seconds(self) -> float:
        """Wall seconds per *surviving* step (compute + comm + waste)."""
        if self.resilience_efficiency <= 0.0:
            return math.inf
        return self.point.step_seconds / self.resilience_efficiency


@dataclass(frozen=True)
class ResilientRunOutcome:
    """Tally of one deterministic failure-replay (see
    :func:`simulate_resilient_run`)."""

    wall_seconds: float
    steps_completed: int
    steps_replayed: int          #: work re-done after rollbacks
    checkpoints_written: int
    restarts: int

    @property
    def useful_fraction(self) -> float:
        """Completed steps over total steps marched (1.0 = nothing redone)."""
        total_steps = self.steps_completed + self.steps_replayed
        if total_steps <= 0:
            return 1.0
        return self.steps_completed / total_steps


def simulate_resilient_run(*, n_steps: int, step_seconds: float,
                           checkpoint_every: int, checkpoint_seconds: float,
                           restart_seconds: float,
                           failure_times: list[float] | tuple[float, ...] = (),
                           ) -> ResilientRunOutcome:
    """Deterministically replay a run through a given failure timeline.

    Failures (wall-clock seconds, e.g. from
    :meth:`repro.faults.ranks.RankFailurePlan.failure_times` converted
    to seconds) kill whatever is in flight: the run rolls back to the
    last completed checkpoint, pays ``restart_seconds``, and re-marches.
    A checkpoint interrupted mid-write does not count (that is exactly
    what the atomic-rename format guarantees on the real filesystem).
    """
    if n_steps < 0 or step_seconds < 0 or checkpoint_seconds < 0 \
            or restart_seconds < 0 or checkpoint_every < 0:
        raise ConfigurationError("simulate_resilient_run arguments must be >= 0")
    pending = sorted(float(t) for t in failure_times)
    wall = 0.0
    step = 0                # completed steps
    last_ckpt = 0           # step the newest durable checkpoint holds
    replayed = 0
    ckpts = 0
    restarts = 0

    def crash(at: float) -> None:
        nonlocal wall, step, replayed, restarts
        replayed += step - last_ckpt
        wall = at + restart_seconds
        step = last_ckpt
        restarts += 1

    while step < n_steps:
        if pending and wall + step_seconds > pending[0]:
            crash(pending.pop(0))
            continue
        wall += step_seconds
        step += 1
        if checkpoint_every and step % checkpoint_every == 0 and step < n_steps:
            if pending and wall + checkpoint_seconds > pending[0]:
                crash(pending.pop(0))
                continue
            wall += checkpoint_seconds
            ckpts += 1
            last_ckpt = step
    return ResilientRunOutcome(wall_seconds=wall, steps_completed=n_steps,
                               steps_replayed=replayed,
                               checkpoints_written=ckpts, restarts=restarts)
