"""One rank's solver over its block of the decomposition (paper §III-A).

A :class:`RankSolver` runs exactly the serial workspace RHS pipeline —
``cons_to_prim`` → pad → WENO → positivity limit → Riemann → divergence
accumulate — on one rank's local block, with ghost values at interior
faces supplied by a halo *transport* instead of physical BCs.  It owns a
full :class:`~repro.solver.workspace.SolverWorkspace` sized for the
block, so a steady-state RHS evaluation performs no new large-array
allocations (the distributed analog of the serial ``out=`` paths).

The transport is duck-typed with two methods:

* ``post(rank, axis, field)`` — pack the rank's boundary strips along
  ``axis`` into the neighbours' mailboxes (in-process arrays for
  :class:`~repro.cluster.halo.HaloExchanger`, shared-memory segments
  for :class:`~repro.cluster.procs.SharedMemoryTransport`);
* ``fill(rank, axis, padded)`` — complete the sendrecv by unpacking the
  neighbours' posted strips into the rank's ghost layers.

Communication hiding
--------------------
The RHS is split into :meth:`rhs_begin` (convert to primitives, post
*every* axis's boundary strips) and :meth:`rhs_finish` (sweep the
directions).  Because the exchange is dimension-split — each sweep pads
along its own axis only, no corner dependencies — all packs can be
posted up front, and each sweep first reconstructs the faces whose WENO
stencils touch no ghost cell, only then waits for the neighbours'
strips, and finishes with the ``ng`` boundary faces on each end.  The
interior compute runs while the ghosts land: the paper's
interior/boundary overlap, host-side.  Span-composed reconstruction is
bitwise identical to the bulk call (the kernels are elementwise over
faces), so overlap never changes a result bit.
"""

from __future__ import annotations

import numpy as np

from repro.bc.boundary import BoundarySet, pad_axis
from repro.cluster.decomposition import BlockDecomposition
from repro.cluster.halo import fill_wall_ghosts
from repro.common import DTYPE, ConfigurationError
from repro.eos.mixture import Mixture
from repro.fields.transpose import sweep_perm, untranspose_loop
from repro.grid.cartesian import StructuredGrid
from repro.profiling.counters import SweepCounters
from repro.riemann import resolve_riemann_flux
from repro.solver.positivity import limit_face_states
from repro.solver.rhs import RHSConfig, _accumulate_divergence
from repro.solver.sweep import (
    plan_transposed_axes,
    validate_fusion,
    validate_sweep_layout,
)
from repro.solver.workspace import SolverWorkspace
from repro.state.conversions import cons_to_prim, full_alphas
from repro.state.layout import StateLayout
from repro.timestepping.ssp_rk import SSP_SCHEMES
from repro.weno import (
    halo_width,
    reconstruct_faces,
    reconstruct_faces_span,
    weno_passes_per_side,
)


class _BlockShape:
    """Minimal grid stand-in for :class:`SolverWorkspace` (shape only)."""

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.shape = shape


class RankSolver:
    """The five-equation RHS/RK pipeline of one decomposed rank.

    Parameters
    ----------
    decomp / rank:
        The block decomposition and this rank's index in it.
    layout / mixture / bcs / config:
        The same numerics objects the serial solver takes; the boundary
        set holds the *global* physical BCs (walls are applied only on
        the sides of this block that touch the global domain edge).
    grid:
        The *global* structured grid; the rank slices its own cell
        widths from it so a decomposed divergence is bitwise identical
        to the serial one.
    transport:
        Halo transport (see module docstring).
    sweep_layout:
        ``"strided"`` / ``"transposed"`` / ``"auto"`` — same meaning
        (and same bitwise-identical guarantee) as the serial solver.
    overlap:
        Compute interior faces while ghost strips land (default).
        ``False`` waits for the exchange up front — same results,
        no hiding; kept as a toggle for A/B timing.
    fusion:
        Kernel-fusion mode (see :mod:`repro.acc.fusion`): ``"off"``
        (default) keeps the staged pipeline; ``"on"``/``"auto"``
        (the rank always owns a workspace, so both fuse) run each
        strided *bulk* sweep — a direction where the interior/ghost
        span split is not in play — as one fused kernel.  Overlapped
        directions keep the span-composed engine (the fused kernel is
        whole-extent), and transposed directions keep theirs; either
        way results stay bitwise identical.
    """

    def __init__(self, decomp: BlockDecomposition, rank: int,
                 layout: StateLayout, mixture: Mixture, bcs: BoundarySet,
                 config: RHSConfig, grid: StructuredGrid, transport, *,
                 sweep_layout: str = "strided", overlap: bool = True,
                 fusion: str = "off") -> None:
        if config.geometry != "cartesian":
            raise ConfigurationError(
                "distributed runs support cartesian geometry only")
        if config.viscosity is not None:
            raise ConfigurationError(
                "distributed runs do not support viscous terms yet")
        validate_sweep_layout(sweep_layout)
        validate_fusion(fusion)
        self.decomp = decomp
        self.rank = rank
        self.layout = layout
        self.mixture = mixture
        self.bcs = bcs
        self.config = config
        self.transport = transport
        self.overlap = overlap
        self.local = decomp.local_cells(rank)
        self._ng = halo_width(config.weno_order)
        self._riemann = resolve_riemann_flux(config.riemann_solver)
        self._transposed = plan_transposed_axes(
            sweep_layout, layout.nvars, self.local, config.weno_order)
        self.ws = SolverWorkspace(layout, _BlockShape(self.local), self._ng,
                                  transposed_axes=self._transposed,
                                  weno_order=config.weno_order)
        self.limited_faces = 0
        self.sweep_counters = SweepCounters()
        self._weno_sweep_passes = 2 * weno_passes_per_side(
            "chained", config.weno_order)
        # Per-axis cell widths sliced from the global grid, broadcast
        # shaped — the same values the serial divergence divides by.
        slices = decomp.local_slices(rank)
        self._widths: list[np.ndarray] = []
        for d in range(layout.ndim):
            w = grid.widths(d)[slices[d]]
            newshape = [1] * layout.ndim
            newshape[d] = w.size
            self._widths.append(w.reshape(newshape))
        self.fusion = fusion
        self.fusion_backend: str | None = None
        self._fused_kernels: dict[int, tuple] = {}
        if fusion != "off":
            self._init_fusion()

    def _init_fusion(self) -> None:
        """Compile one pack-free fused kernel per strided direction.

        The rank's caller owns padding, wall ghosts, and the transport
        fill, so the fused region starts at WENO (``pack=False``); the
        whole local extent runs as a single launch.
        """
        from repro.acc.fusion import (
            FusedKernelSpec,
            FusionContext,
            fused_kernel,
            plan_fusion,
            select_backend,
            sweep_stage_graph,
        )

        lay = self.layout
        self.fusion_backend = select_backend(None)
        self._fusion_ctx = FusionContext(lay, self.mixture, self._riemann)
        for d in range(lay.ndim):
            if d in self._transposed:
                continue
            stages = sweep_stage_graph(
                ndim=lay.ndim, nvars=lay.nvars, spatial=self.local, d=d,
                order=self.config.weno_order, pack=False)
            region = plan_fusion(stages, d=d, ndim=lay.ndim)
            spec = FusedKernelSpec(
                kind="strided", pack=False, ndim=lay.ndim, d=d,
                order=self.config.weno_order, weno_variant="chained",
                riemann_solver=self.config.riemann_solver,
                riemann_variant="reference", dtype=np.dtype(DTYPE).name,
                backend=self.fusion_backend)
            self._fused_kernels[d] = (spec, fused_kernel(spec), region)

    # -- the split RHS -------------------------------------------------------
    def rhs_begin(self, q: np.ndarray, *, prim: np.ndarray | None = None
                  ) -> np.ndarray:
        """Convert to primitives and post every axis's boundary strips."""
        if prim is None:
            prim = cons_to_prim(self.layout, self.mixture, q, out=self.ws.prim)
        for d in range(self.layout.ndim):
            self.transport.post(self.rank, d, prim)
        return prim

    def rhs_finish(self, prim: np.ndarray, *,
                   out: np.ndarray | None = None) -> np.ndarray:
        """Sweep all directions and assemble ``dq/dt`` for the block."""
        ws, lay = self.ws, self.layout
        dqdt = ws.dqdt if out is None else out
        dqdt.fill(0.0)
        divu = ws.divu
        divu.fill(0.0)
        for d in range(lay.ndim):
            if d in self._transposed:
                self._direction_transposed(prim, d, dqdt, divu)
            else:
                self._direction(prim, d, dqdt, divu)
        dqdt[lay.advected] += prim[lay.advected] * divu
        return dqdt

    def rhs(self, q: np.ndarray, *, out: np.ndarray | None = None,
            prim: np.ndarray | None = None) -> np.ndarray:
        """One-shot RHS with the :func:`ssp_rk_step` workspace signature."""
        prim = self.rhs_begin(q, prim=prim)
        return self.rhs_finish(prim, out=out)

    # -- direction sweeps ----------------------------------------------------
    def _fill_ghosts(self, d: int, padded: np.ndarray) -> None:
        fill_wall_ghosts(padded, self.layout, self.bcs, self.decomp,
                         self.rank, d, self._ng)
        self.transport.fill(self.rank, d, padded)

    def _direction(self, prim: np.ndarray, d: int, dqdt: np.ndarray,
                   divu: np.ndarray) -> None:
        ws, lay, ng = self.ws, self.layout, self._ng
        padded = ws.padded[d]
        pad_axis(prim, d, ng, out=padded)
        n = prim.shape[d + 1]
        # Overlap needs a non-empty ghost-free interior span and an
        # actual exchange to hide; otherwise sweep in bulk.
        if (self.overlap and n >= 2 * ng
                and self.decomp.neighbor_sides(self.rank, d) > 0):
            # Faces [ng, n-ng] read interior cells only — compute them
            # while the neighbours' boundary strips are in flight.
            self._faces_span(d, padded, ng, n - ng + 1)
            self._fill_ghosts(d, padded)
            self._faces_span(d, padded, 0, ng)
            self._faces_span(d, padded, n - ng + 1, n + 1)
        else:
            self._fill_ghosts(d, padded)
            fused = self._fused_kernels.get(d)
            if fused is not None:
                spec, kern, region = fused
                self.limited_faces += kern(
                    self._fusion_ctx, padded, ws.face_l[d], ws.face_r[d],
                    ws.flux[d], ws.u_face[d], ws.weno_scratch[d],
                    ws.riemann_scratch[d], ws.div_scratch, ws.divu_scratch,
                    dqdt, divu, self._widths[d])
                self.sweep_counters.record_strided(
                    ws.face_l[d].nbytes + ws.face_r[d].nbytes,
                    contiguous=(d == lay.ndim - 1),
                    weno_passes=self._weno_sweep_passes)
                self.sweep_counters.record_fused(
                    1, region.passes_saved_per_tile(
                        "chained", self.config.weno_order))
                return
            v_l, v_r = reconstruct_faces(
                padded, d + 1, self.config.weno_order,
                out=(ws.face_l[d], ws.face_r[d]), scratch=ws.weno_scratch[d])
            self.limited_faces += limit_face_states(
                lay, self.mixture, padded, v_l, v_r, d, ng)
            self._riemann(lay, self.mixture, v_l, v_r, d,
                          out=ws.flux[d], out_u=ws.u_face[d],
                          scratch=ws.riemann_scratch[d])
        _accumulate_divergence(ws.flux[d], d + 1, self._widths[d],
                               ws.div_scratch, dqdt, "subtract")
        _accumulate_divergence(ws.u_face[d], d, self._widths[d],
                               ws.divu_scratch, divu, "add")
        self.sweep_counters.record_strided(
            ws.face_l[d].nbytes + ws.face_r[d].nbytes,
            contiguous=(d == lay.ndim - 1),
            weno_passes=self._weno_sweep_passes)

    def _faces_span(self, d: int, padded: np.ndarray, lo: int, hi: int) -> None:
        """Reconstruct, limit, and solve faces ``[lo, hi)`` of direction ``d``.

        Elementwise over faces, so spans partitioning the face range
        compose bitwise into the same states the bulk path produces.
        """
        if lo >= hi:
            return
        ws, lay, ng = self.ws, self.layout, self._ng
        v_l, v_r = ws.face_l[d], ws.face_r[d]
        reconstruct_faces_span(padded, d + 1, self.config.weno_order, lo, hi,
                               out=(v_l, v_r), scratch=ws.weno_scratch[d])
        span = [slice(None)] * padded.ndim
        span[d + 1] = slice(lo, hi)
        span = tuple(span)
        shifted = [slice(None)] * padded.ndim
        shifted[d + 1] = slice(lo, None)
        self.limited_faces += limit_face_states(
            lay, self.mixture, padded[tuple(shifted)], v_l[span], v_r[span],
            d, ng)
        scr = [slice(None)] * padded.ndim
        scr[d + 1] = slice(0, hi - lo)
        self._riemann(lay, self.mixture, v_l[span], v_r[span], d,
                      out=ws.flux[d][span], out_u=ws.u_face[d][span[1:]],
                      scratch=ws.riemann_scratch[d].view(tuple(scr)))

    def _direction_transposed(self, prim: np.ndarray, d: int,
                              dqdt: np.ndarray, divu: np.ndarray) -> None:
        """Direction ``d`` swept in the axis-contiguous transposed layout.

        Ghosts are filled in the standard layout (walls + transport),
        then the whole padded block is gathered into the axis-last
        scratch — pure data movement, so the sweep stays bitwise
        identical to the strided one.
        """
        ws, lay, ng = self.ws, self.layout, self._ng
        arr = prim.ndim
        perm = sweep_perm(arr, d + 1)
        padded = ws.padded[d]
        pad_axis(prim, d, ng, out=padded)
        self._fill_ghosts(d, padded)
        tpad = ws.t_padded[d]
        tpad[...] = np.transpose(padded, perm)
        tvl, tvr = ws.t_face_l[d], ws.t_face_r[d]
        reconstruct_faces(tpad, arr - 1, self.config.weno_order,
                          out=(tvl, tvr), scratch=ws.weno_scratch[d])
        self.limited_faces += limit_face_states(
            lay, self.mixture, tpad, tvl, tvr, arr - 2, ng)
        self._riemann(lay, self.mixture, tvl, tvr, d,
                      out=ws.t_flux[d], out_u=ws.t_u_face[d],
                      scratch=ws.t_riemann_scratch[d])
        untranspose_loop(ws.t_flux[d], perm, out=ws.flux[d])
        untranspose_loop(ws.t_u_face[d], tuple(p - 1 for p in perm[1:]),
                         out=ws.u_face[d])
        _accumulate_divergence(ws.flux[d], d + 1, self._widths[d],
                               ws.div_scratch, dqdt, "subtract")
        _accumulate_divergence(ws.u_face[d], d, self._widths[d],
                               ws.divu_scratch, divu, "add")
        self.sweep_counters.record_transposed(
            tvl.nbytes + tvr.nbytes,
            prim.nbytes + ws.flux[d].nbytes + ws.u_face[d].nbytes,
            weno_passes=self._weno_sweep_passes)

    # -- time stepping helpers ----------------------------------------------
    def wave_rate(self, prim: np.ndarray) -> float:
        """Largest local :math:`(|u_d| + c)/\\Delta x_d` of the block.

        The global CFL rate is the max of these over ranks — floating
        max decomposes exactly, so the distributed dt is bitwise the
        serial one.
        """
        lay = self.layout
        rho = prim[lay.partial_densities].sum(axis=0)
        alphas = full_alphas(lay, prim[lay.advected])
        c = self.mixture.sound_speed(alphas, rho, prim[lay.pressure])
        rate = 0.0
        for d in range(lay.ndim):
            speed = np.abs(prim[lay.momentum_component(d)]) + c
            rate = max(rate, float((speed / self._widths[d]).max()))
        return rate

    def rk_stage_combine(self, k: int, n_stages: int, coeffs, dt: float,
                         q_n: np.ndarray, q_k: np.ndarray, L: np.ndarray
                         ) -> np.ndarray:
        """One Shu-Osher convex combination through the workspace buffers.

        Replicates the exact five-ufunc grouping of
        :func:`~repro.timestepping.ssp_rk.ssp_rk_step`'s workspace path,
        so a stage driven externally (the bulk-synchronous in-process
        driver) is bitwise identical to one driven by ``ssp_rk_step``.
        """
        a, b, c = coeffs
        ws = self.ws
        out = ws.rk_result if k == n_stages - 1 else ws.rk_stage[k % 2]
        np.multiply(q_k, b, out=ws.rk_tmp)
        np.multiply(q_n, a, out=out)
        np.add(out, ws.rk_tmp, out=out)
        np.multiply(L, c * dt, out=ws.rk_tmp)
        np.add(out, ws.rk_tmp, out=out)
        return out


def rk_stages(rk_order: int):
    """The Shu-Osher tableau for ``rk_order`` (validated)."""
    if rk_order not in SSP_SCHEMES:
        raise ConfigurationError(f"unsupported RK order {rk_order}")
    return SSP_SCHEMES[rk_order]
