"""Machine topologies: OLCF Summit and OLCF Frontier (paper §I, §IV).

Only the facts the communication and I/O models consume are encoded:
devices per node, per-node network injection bandwidth (shared by the
node's devices), MPI latency, the host-device staging link, and the
machine's total device count (for the "% of the machine" labels in
Figs. 2-3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigurationError
from repro.hardware.devices import DeviceSpec, GPUS
from repro.hardware.transfer import TransferModel


@dataclass(frozen=True)
class MachineSpec:
    """One leadership-class machine, as seen by the scaling models."""

    name: str
    device: DeviceSpec
    devices_per_node: int
    total_devices: int
    nic_bandwidth_gbps: float     # per-node injection bandwidth, GB/s
    mpi_latency_us: float
    staging_link: TransferModel   # host<->device path for non-GPU-aware MPI
    compiler: str
    #: Fraction of the NIC share MPI point-to-point actually sustains for
    #: halo-sized messages (protocol + rendezvous + pinning overheads).
    mpi_efficiency: float = 0.35
    #: Fractional comm slowdown per node-count doubling beyond the
    #: contention threshold (global-link congestion at machine scale).
    contention_per_doubling: float = 0.05
    #: log2(node count) below which the network is effectively
    #: congestion-free (strong-scaling sweeps live below it).
    contention_threshold_log2: float = 8.0
    #: Device-to-device link within a node (NVLink on Summit, Infinity
    #: Fabric/xGMI on Frontier); used by the event simulator's
    #: ``use_intra_node_links`` refinement.
    intra_node_link: TransferModel = TransferModel(bandwidth_gbps=50.0,
                                                   latency_us=1.5)

    def __post_init__(self) -> None:
        if self.devices_per_node < 1 or self.total_devices < self.devices_per_node:
            raise ConfigurationError(f"{self.name}: inconsistent device counts")
        if self.nic_bandwidth_gbps <= 0.0 or self.mpi_latency_us <= 0.0:
            raise ConfigurationError(f"{self.name}: invalid network parameters")
        if not 0.0 < self.mpi_efficiency <= 1.0:
            raise ConfigurationError(f"{self.name}: mpi_efficiency must be in (0, 1]")

    @property
    def nic_share_gbps(self) -> float:
        """Injection bandwidth available to one device when all inject at once."""
        return self.nic_bandwidth_gbps / self.devices_per_node

    @property
    def effective_mpi_bandwidth_gbps(self) -> float:
        """Sustained per-device MPI bandwidth for halo messages."""
        return self.nic_share_gbps * self.mpi_efficiency

    def fraction_of_machine(self, ndevices: int) -> float:
        return ndevices / self.total_devices


#: Effective host-staged MPI paths (D2H + host send), as sustained by the
#: application rather than the link's theoretical peak: Summit stages over
#: NVLink/P9 but bottlenecks on host-memory copies (~12 GB/s); Frontier's
#: early host-staged path sustained ~5 GB/s, which is exactly why Fig. 4's
#: GPU-aware MPI matters.
SUMMIT_STAGING = TransferModel(bandwidth_gbps=12.0, latency_us=10.0)
FRONTIER_STAGING = TransferModel(bandwidth_gbps=5.0, latency_us=10.0)

#: OLCF Summit: 6 V100 per node, dual-rail EDR InfiniBand (2 x 12.5 GB/s),
#: 27,648 GPUs total; NVHPC toolchain.  Fat-tree network -> low contention
#: growth at scale.
SUMMIT = MachineSpec(
    name="OLCF Summit",
    device=GPUS["v100"],
    devices_per_node=6,
    total_devices=27_648,
    nic_bandwidth_gbps=25.0,
    mpi_latency_us=3.0,
    staging_link=SUMMIT_STAGING,
    compiler="nvhpc",
    mpi_efficiency=0.45,
    contention_per_doubling=0.05,
)

#: OLCF Frontier: 8 MI250X GCDs per node, 4 x 25 GB/s Slingshot-11,
#: 75,264 GCDs total (paper counts 37,632 MI250X modules = 2 GCDs each
#: and scales to 65,536 GCDs = 87% of the machine); CCE toolchain.
#: Dragonfly global links congest harder at near-full-machine scale.
FRONTIER = MachineSpec(
    name="OLCF Frontier",
    device=GPUS["mi250x"],
    devices_per_node=8,
    total_devices=75_264,
    nic_bandwidth_gbps=100.0,
    mpi_latency_us=2.0,
    staging_link=FRONTIER_STAGING,
    compiler="cce",
    contention_per_doubling=0.20,
)

MACHINES = {"summit": SUMMIT, "frontier": FRONTIER}
