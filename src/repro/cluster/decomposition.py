"""3D block domain decomposition (paper §III-A).

MFC decomposes the domain into near-cubic 3D blocks rather than slabs
(1D splits) or pencils (2D splits) because blocks minimise the
surface-to-volume ratio of each rank's subdomain, and therefore the
halo traffic per unit of compute.  :func:`factor3d` produces the most
cubic factorisation of a rank count; :class:`BlockDecomposition` maps
ranks to blocks, assigns neighbours, and computes exactly the
communication surface the scaling models charge for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import ConfigurationError


def factor3d(nranks: int, *, ndim: int = 3) -> tuple[int, ...]:
    """Most-cubic factorisation of ``nranks`` into ``ndim`` factors.

    Greedy prime assignment: each prime factor (largest first) goes to
    the currently smallest axis, which provably keeps the axis lengths
    within one prime factor of each other.
    """
    if nranks < 1:
        raise ConfigurationError(f"nranks must be >= 1, got {nranks}")
    if ndim not in (1, 2, 3):
        raise ConfigurationError(f"ndim must be 1-3, got {ndim}")
    primes = _prime_factors(nranks)
    dims = [1] * ndim
    for p in sorted(primes, reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))


def _prime_factors(n: int) -> list[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


@dataclass(frozen=True)
class BlockDecomposition:
    """A rank grid over a global cell grid.

    Parameters
    ----------
    global_cells:
        Global cell counts per axis.
    rank_grid:
        Ranks per axis; must divide into roughly equal blocks.
    periodic:
        Per-axis periodicity (affects who counts as a neighbour).
    """

    global_cells: tuple[int, ...]
    rank_grid: tuple[int, ...]
    periodic: tuple[bool, ...] = (False, False, False)

    def __post_init__(self) -> None:
        nd = len(self.global_cells)
        if not 1 <= nd <= 3 or len(self.rank_grid) != nd:
            raise ConfigurationError("global_cells and rank_grid must match, 1-3D")
        if len(self.periodic) < nd:
            raise ConfigurationError("periodic flags must cover every axis")
        for axis, (cells, ranks) in enumerate(zip(self.global_cells, self.rank_grid)):
            if ranks < 1 or cells < ranks:
                raise ConfigurationError(
                    f"axis {axis}: cannot split {cells} cells across {ranks} ranks")

    # -- sizes -------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.global_cells)

    @property
    def nranks(self) -> int:
        return int(np.prod(self.rank_grid))

    @classmethod
    def balanced(cls, global_cells: tuple[int, ...], nranks: int,
                 periodic: tuple[bool, ...] | None = None) -> "BlockDecomposition":
        """Decompose with the most cubic rank grid for ``nranks``."""
        nd = len(global_cells)
        grid = factor3d(nranks, ndim=nd)
        # Assign larger rank-axis counts to larger cell axes.
        order = np.argsort(np.argsort([-c for c in global_cells]))
        grid_sorted = sorted(grid, reverse=True)
        rank_grid = tuple(grid_sorted[order[i]] for i in range(nd))
        return cls(global_cells, rank_grid,
                   periodic or tuple([False] * nd))

    @classmethod
    def slabs(cls, global_cells: tuple[int, ...], nranks: int) -> "BlockDecomposition":
        """1D split along the largest axis (the baseline blocks beat)."""
        nd = len(global_cells)
        grid = [1] * nd
        grid[int(np.argmax(global_cells))] = nranks
        return cls(global_cells, tuple(grid), tuple([False] * nd))

    @classmethod
    def pencils(cls, global_cells: tuple[int, ...], nranks: int) -> "BlockDecomposition":
        """2D split over the two largest axes."""
        nd = len(global_cells)
        if nd < 2:
            raise ConfigurationError("pencils need at least 2 dimensions")
        two = factor3d(nranks, ndim=2)
        axes = np.argsort(global_cells)[::-1][:2]
        grid = [1] * nd
        grid[axes[0]], grid[axes[1]] = two[0], two[1]
        return cls(global_cells, tuple(grid), tuple([False] * nd))

    # -- per-rank geometry ----------------------------------------------------
    def rank_coords(self, rank: int) -> tuple[int, ...]:
        """Cartesian coordinates of ``rank`` in the rank grid (row-major)."""
        if not 0 <= rank < self.nranks:
            raise ConfigurationError(f"rank {rank} out of range [0, {self.nranks})")
        coords = []
        rem = rank
        for extent in reversed(self.rank_grid):
            coords.append(rem % extent)
            rem //= extent
        return tuple(reversed(coords))

    def coords_rank(self, coords: tuple[int, ...]) -> int:
        rank = 0
        for c, extent in zip(coords, self.rank_grid):
            if not 0 <= c < extent:
                raise ConfigurationError(f"coords {coords} outside rank grid")
            rank = rank * extent + c
        return rank

    def local_cells(self, rank: int) -> tuple[int, ...]:
        """Cell counts of this rank's block (remainder spread to low ranks)."""
        coords = self.rank_coords(rank)
        out = []
        for c, cells, ranks in zip(coords, self.global_cells, self.rank_grid):
            base, rem = divmod(cells, ranks)
            out.append(base + (1 if c < rem else 0))
        return tuple(out)

    def local_slices(self, rank: int) -> tuple[slice, ...]:
        """Global index ranges owned by ``rank``."""
        coords = self.rank_coords(rank)
        out = []
        for c, cells, ranks in zip(coords, self.global_cells, self.rank_grid):
            base, rem = divmod(cells, ranks)
            start = c * base + min(c, rem)
            size = base + (1 if c < rem else 0)
            out.append(slice(start, start + size))
        return tuple(out)

    def neighbor(self, rank: int, axis: int, side: int) -> int | None:
        """Neighbouring rank across ``axis`` (side -1 or +1), or None at a wall."""
        if side not in (-1, 1):
            raise ConfigurationError("side must be -1 or +1")
        coords = list(self.rank_coords(rank))
        coords[axis] += side
        extent = self.rank_grid[axis]
        if 0 <= coords[axis] < extent:
            return self.coords_rank(tuple(coords))
        if self.periodic[axis]:
            coords[axis] %= extent
            return self.coords_rank(tuple(coords))
        return None

    # -- communication volume --------------------------------------------------
    def neighbor_sides(self, rank: int, axis: int) -> int:
        """Number of halo messages ``rank`` receives along ``axis`` (0-2).

        A periodic axis with a single rank still exchanges with itself
        on both sides (the wrap copy is a real message in MPI terms), so
        this is simply the count of non-``None`` neighbours.
        """
        return sum(1 for side in (-1, 1)
                   if self.neighbor(rank, axis, side) is not None)

    def max_neighbors_per_axis(self) -> tuple[int, ...]:
        """Worst-rank neighbour count per axis.

        This is what the analytic comm model must charge instead of a
        flat two messages per axis: an undecomposed non-periodic axis
        (``rank_grid[axis] == 1``) sends nothing, a two-rank
        non-periodic axis sends one message per rank, and anything
        periodic or deeper sends two.
        """
        out = []
        for axis in range(self.ndim):
            ranks = self.rank_grid[axis]
            if self.periodic[axis] or ranks > 2:
                out.append(2)
            elif ranks == 2:
                out.append(1)
            else:
                out.append(0)
        return tuple(out)

    def total_messages(self) -> int:
        """Halo messages per full exchange, summed over ranks and axes.

        ``HaloExchanger.messages`` after one exchange equals exactly
        this (tests assert it), which is what keeps the analytic model
        and the functional transport reconciled.
        """
        return sum(self.neighbor_sides(r, axis)
                   for r in range(self.nranks)
                   for axis in range(self.ndim))

    def total_halo_bytes(self, ng: int, nvars: int, itemsize: int = 8) -> int:
        """Bytes moved per full exchange, summed over ranks and axes."""
        return sum(self.halo_cells(r, ng)
                   for r in range(self.nranks)) * nvars * itemsize

    def halo_cells(self, rank: int, ng: int) -> int:
        """Cells exchanged per halo pass (both sides, all axes with neighbours)."""
        local = self.local_cells(rank)
        total = 0
        for axis in range(self.ndim):
            face = int(np.prod(local)) // local[axis]
            for side in (-1, 1):
                if self.neighbor(rank, axis, side) is not None:
                    total += ng * face
        return total

    def surface_to_volume(self, rank: int, ng: int = 1) -> float:
        """Halo cells per interior cell — the metric blocks minimise."""
        local = self.local_cells(rank)
        return self.halo_cells(rank, ng) / float(np.prod(local))

    def max_halo_bytes(self, ng: int, nvars: int, itemsize: int = 8) -> int:
        """Worst-rank halo bytes per exchange (sizing the comm model).

        Computed analytically for the largest possible block with
        neighbours on every non-wall side, so it is a tight upper bound
        without scanning millions of ranks.
        """
        largest = []
        for cells, ranks in zip(self.global_cells, self.rank_grid):
            base, rem = divmod(cells, ranks)
            largest.append(base + (1 if rem else 0))
        total = 0
        sides = self.max_neighbors_per_axis()
        for axis in range(self.ndim):
            face = int(np.prod(largest)) // largest[axis]
            total += sides[axis] * ng * face
        return total * nvars * itemsize
