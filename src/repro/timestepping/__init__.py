"""Explicit time integration: SSP Runge-Kutta and CFL-based step control."""

from repro.timestepping.cfl import cfl_dt, max_wave_speed
from repro.timestepping.ssp_rk import SSP_SCHEMES, ssp_rk_step

__all__ = ["cfl_dt", "max_wave_speed", "SSP_SCHEMES", "ssp_rk_step"]
