"""Explicit time integration: SSP Runge-Kutta and CFL-based step control."""

from repro.timestepping.cfl import (
    cfl_dt,
    cfl_dts,
    max_wave_speed,
    max_wave_speeds,
)
from repro.timestepping.ssp_rk import SSP_SCHEMES, ssp_rk_step

__all__ = ["cfl_dt", "cfl_dts", "max_wave_speed", "max_wave_speeds",
           "SSP_SCHEMES", "ssp_rk_step"]
