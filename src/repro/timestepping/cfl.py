"""CFL-based time-step selection."""

from __future__ import annotations

import numpy as np

from repro.backend import array_namespace
from repro.common import NumericsError
from repro.eos.mixture import Mixture
from repro.grid.cartesian import StructuredGrid
from repro.state.conversions import full_alphas
from repro.state.layout import StateLayout


def max_wave_speed(layout: StateLayout, mixture: Mixture, prim: np.ndarray,
                   grid: StructuredGrid) -> float:
    """Largest :math:`(|u_d| + c)/\\Delta x_d` over all cells and directions.

    This is the quantity whose reciprocal bounds the stable explicit step.
    """
    xp = array_namespace(prim)
    rho = prim[layout.partial_densities].sum(axis=0)
    alphas = full_alphas(layout, prim[layout.advected])
    c = mixture.sound_speed(alphas, rho, prim[layout.pressure])
    rate = 0.0
    for d, w in enumerate(grid.width_fields()):
        # Grid widths live on the host; asarray is the sanctioned H2D
        # entry (identity for NumPy, so bitwise neutral).
        w = xp.asarray(w, dtype=prim.dtype)
        speed = xp.abs(prim[layout.momentum_component(d)]) + c
        rate = max(rate, float((speed / w).max()))
    return rate


def max_wave_speeds(layout: StateLayout, mixture: Mixture, prim: np.ndarray,
                    grid: StructuredGrid) -> np.ndarray:
    """Per-case :func:`max_wave_speed` of a batch-stacked primitive field.

    ``prim`` has shape ``(nvars, B, *grid.shape)`` — the ensemble
    engine's batch-inner layout — and the result is the length-``B``
    vector of per-case maximum wave rates, computed in **one** reduction
    pass over the stacked arrays instead of a Python loop over cases.
    Each entry is bitwise the value :func:`max_wave_speed` returns for
    that case alone: the speed arithmetic is elementwise per case and a
    floating max is exact under any grouping of comparisons.
    """
    xp = array_namespace(prim)
    rho = prim[layout.partial_densities].sum(axis=0)
    alphas = full_alphas(layout, prim[layout.advected])
    c = mixture.sound_speed(alphas, rho, prim[layout.pressure])
    grid_axes = tuple(range(1, 1 + grid.ndim))
    rates = xp.zeros(prim.shape[1], dtype=prim.dtype)
    for d, w in enumerate(grid.width_fields()):
        w = xp.asarray(w, dtype=prim.dtype)
        speed = xp.abs(prim[layout.momentum_component(d)]) + c
        xp.maximum(rates, xp.max(speed / w, axis=grid_axes), out=rates)
    return rates


def cfl_dt(layout: StateLayout, mixture: Mixture, prim: np.ndarray,
           grid: StructuredGrid, cfl: float) -> float:
    """Stable time step ``cfl / max_d (|u_d| + c)/dx_d``."""
    if not 0.0 < cfl <= 1.0:
        raise NumericsError(f"CFL number must be in (0, 1], got {cfl}")
    rate = max_wave_speed(layout, mixture, prim, grid)
    if not np.isfinite(rate) or rate <= 0.0:
        raise NumericsError(f"invalid maximum wave rate {rate}")
    return cfl / rate


def cfl_dts(layout: StateLayout, mixture: Mixture, prim: np.ndarray,
            grid: StructuredGrid, cfl: float) -> np.ndarray:
    """Per-case stable time steps for a batch-stacked primitive field.

    The vector analog of :func:`cfl_dt`: one batched reduction yields
    the length-``B`` dt vector ``cfl / rates``, each entry bitwise the
    scalar dt of that case alone.  An invalid rate raises
    :class:`NumericsError` naming the offending case index.
    """
    if not 0.0 < cfl <= 1.0:
        raise NumericsError(f"CFL number must be in (0, 1], got {cfl}")
    xp = array_namespace(prim)
    rates = max_wave_speeds(layout, mixture, prim, grid)
    bad = ~xp.isfinite(rates) | (rates <= 0.0)
    if bool(bad.any()):
        i = int(xp.argmax(bad))
        rates = xp.asarray(rates)
        raise NumericsError(
            f"invalid maximum wave rate {float(rates[i])} for ensemble case {i}")
    return cfl / rates
