"""CFL-based time-step selection."""

from __future__ import annotations

import numpy as np

from repro.common import NumericsError
from repro.eos.mixture import Mixture
from repro.grid.cartesian import StructuredGrid
from repro.state.conversions import full_alphas
from repro.state.layout import StateLayout


def max_wave_speed(layout: StateLayout, mixture: Mixture, prim: np.ndarray,
                   grid: StructuredGrid) -> float:
    """Largest :math:`(|u_d| + c)/\\Delta x_d` over all cells and directions.

    This is the quantity whose reciprocal bounds the stable explicit step.
    """
    rho = prim[layout.partial_densities].sum(axis=0)
    alphas = full_alphas(layout, prim[layout.advected])
    c = mixture.sound_speed(alphas, rho, prim[layout.pressure])
    rate = 0.0
    for d, w in enumerate(grid.width_fields()):
        speed = np.abs(prim[layout.momentum_component(d)]) + c
        rate = max(rate, float((speed / w).max()))
    return rate


def cfl_dt(layout: StateLayout, mixture: Mixture, prim: np.ndarray,
           grid: StructuredGrid, cfl: float) -> float:
    """Stable time step ``cfl / max_d (|u_d| + c)/dx_d``."""
    if not 0.0 < cfl <= 1.0:
        raise NumericsError(f"CFL number must be in (0, 1], got {cfl}")
    rate = max_wave_speed(layout, mixture, prim, grid)
    if not np.isfinite(rate) or rate <= 0.0:
        raise NumericsError(f"invalid maximum wave rate {rate}")
    return cfl / rate
