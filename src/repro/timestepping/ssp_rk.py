"""Strong-stability-preserving Runge-Kutta integrators (Shu-Osher form).

MFC time-marches with SSP-RK3; orders 1 and 2 are provided for testing
and temporal-convergence studies.  Each stage is a convex combination

.. math::

   q^{(k)} = a\\,q^n + b\\,q^{(k-1)} + c\\,\\Delta t\\,L(q^{(k-1)}),

which preserves any convex invariant (positivity, maximum principles)
the forward-Euler building block preserves.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common import ConfigurationError

#: Shu-Osher tableaux: per stage, coefficients (a, b, c) of
#: ``a*q_n + b*q_prev + c*dt*L(q_prev)``.
SSP_SCHEMES: dict[int, tuple[tuple[float, float, float], ...]] = {
    1: (
        (1.0, 0.0, 1.0),
    ),
    2: (
        (1.0, 0.0, 1.0),
        (0.5, 0.5, 0.5),
    ),
    3: (
        (1.0, 0.0, 1.0),
        (0.75, 0.25, 0.25),
        (1.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0),
    ),
}


def ssp_rk_step(rhs: Callable[[np.ndarray], np.ndarray], q: np.ndarray,
                dt: float, order: int = 3) -> np.ndarray:
    """Advance ``q`` by one step of the SSP-RK scheme of the given order.

    ``rhs(q)`` must return :math:`L(q) = dq/dt`; the input array is not
    modified.
    """
    if order not in SSP_SCHEMES:
        raise ConfigurationError(
            f"SSP-RK order must be one of {sorted(SSP_SCHEMES)}, got {order}")
    q_n = q
    q_k = q
    for a, b, c in SSP_SCHEMES[order]:
        # First stage has b == 0, so q_prev's coefficient pattern still
        # holds with q_k == q_n.
        q_k = a * q_n + b * q_k + (c * dt) * rhs(q_k)
    return q_k
