"""Strong-stability-preserving Runge-Kutta integrators (Shu-Osher form).

MFC time-marches with SSP-RK3; orders 1 and 2 are provided for testing
and temporal-convergence studies.  Each stage is a convex combination

.. math::

   q^{(k)} = a\\,q^n + b\\,q^{(k-1)} + c\\,\\Delta t\\,L(q^{(k-1)}),

which preserves any convex invariant (positivity, maximum principles)
the forward-Euler building block preserves.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.backend import array_namespace
from repro.common import ConfigurationError

#: Shu-Osher tableaux: per stage, coefficients (a, b, c) of
#: ``a*q_n + b*q_prev + c*dt*L(q_prev)``.
SSP_SCHEMES: dict[int, tuple[tuple[float, float, float], ...]] = {
    1: (
        (1.0, 0.0, 1.0),
    ),
    2: (
        (1.0, 0.0, 1.0),
        (0.5, 0.5, 0.5),
    ),
    3: (
        (1.0, 0.0, 1.0),
        (0.75, 0.25, 0.25),
        (1.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0),
    ),
}


def ssp_rk_step(rhs: Callable[[np.ndarray], np.ndarray], q: np.ndarray,
                dt: float, order: int = 3, *,
                workspace=None, prim0: np.ndarray | None = None,
                executor=None) -> np.ndarray:
    """Advance ``q`` by one step of the SSP-RK scheme of the given order.

    ``rhs(q)`` must return :math:`L(q) = dq/dt`; the input array is not
    modified.

    With a :class:`~repro.solver.workspace.SolverWorkspace` the stages
    run through preallocated buffers and the returned array is the
    workspace's ``rk_result`` (reused on the next call — copy it if you
    need it to survive).  The workspace path requires an ``rhs``
    accepting ``out=`` and ``prim=`` keywords (the solver's
    :class:`~repro.solver.rhs.RHS` does); ``prim0``, when given, is the
    precomputed primitive field of ``q`` forwarded to the first stage so
    the driver's dt computation and stage one share a single
    ``cons_to_prim``.

    ``dt`` may be a scalar or an array broadcastable against ``q``'s
    trailing axes — the ensemble engine passes a per-case dt field of
    shape ``(B, 1, ...)`` against batch-stacked ``(nvars, B, *grid)``
    states, so the broadcast multiply applies each case's scalar dt to
    exactly that case's slab, bitwise as in a standalone step.

    With a :class:`~repro.acc.gang.GangExecutor` the
    Shu-Osher axpy combinations additionally run tiled along the
    slowest spatial axis (elementwise ops on disjoint row slabs).  All
    paths are bitwise identical.
    """
    if order not in SSP_SCHEMES:
        raise ConfigurationError(
            f"SSP-RK order must be one of {sorted(SSP_SCHEMES)}, got {order}")
    if workspace is None:
        q_n = q
        q_k = q
        for a, b, c in SSP_SCHEMES[order]:
            # First stage has b == 0, so q_prev's coefficient pattern still
            # holds with q_k == q_n.
            q_k = a * q_n + b * q_k + (c * dt) * rhs(q_k)
        return q_k

    stages = SSP_SCHEMES[order]
    ws = workspace
    xp = array_namespace(q)
    tiled = executor is not None and executor.parallel and q.ndim > 1
    q_n = q
    q_k = q
    for k, (a, b, c) in enumerate(stages):
        # The result buffer may alias q_n (it is the previous step's
        # output); intermediate stages go to alternating stage buffers,
        # so q_n stays intact until the final stage's first write — and
        # that write (a*q_n into the result) is element-aligned, hence
        # safe under aliasing (per tile exactly as for the whole array).
        out = ws.rk_result if k == len(stages) - 1 else ws.rk_stage[k % 2]
        L = rhs(q_k, out=ws.dqdt, prim=prim0 if k == 0 else None)
        # q_{k+1} = (a*q_n + b*q_k) + (c*dt)*L, grouped as in the
        # allocating path above so the two are bitwise identical.
        if tiled:
            _axpy_stage_tiled(executor, q_n, q_k, L, out, ws.rk_tmp,
                              a, b, c * dt, xp=xp)
        else:
            xp.multiply(q_k, b, out=ws.rk_tmp)
            xp.multiply(q_n, a, out=out)
            xp.add(out, ws.rk_tmp, out=out)
            xp.multiply(L, c * dt, out=ws.rk_tmp)
            xp.add(out, ws.rk_tmp, out=out)
        q_k = out
    return q_k


def _axpy_stage_tiled(executor, q_n, q_k, L, out, tmp, a, b, cdt,
                      xp=np) -> None:
    """One Shu-Osher combination, tiled along the slowest spatial axis.

    Each tile runs the serial path's five ufunc evaluations on its own
    row slab (disjoint writes to ``out`` and ``tmp``), so the result is
    bitwise identical to the whole-array combination.  A per-case dt
    field (ensemble runs; leading axis = batch = the tiled axis) is
    sliced to the slab so the broadcast stays aligned.
    """
    vec = getattr(cdt, "ndim", 0) > 0

    def stage(lo, hi):
        s = (slice(None), slice(lo, hi))
        cw = cdt[lo:hi] if vec else cdt
        xp.multiply(q_k[s], b, out=tmp[s])
        xp.multiply(q_n[s], a, out=out[s])
        xp.add(out[s], tmp[s], out=out[s])
        xp.multiply(L[s], cw, out=tmp[s])
        xp.add(out[s], tmp[s], out=out[s])

    executor.launch(stage, q_n.shape[1])
