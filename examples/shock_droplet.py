"""Shock-droplet interaction (paper §VI-A, laptop scale).

A Mach 1.46 air shock impinges a water droplet — the 2D, coarse-grid
analog of the paper's 2-billion-cell run on 960 V100s.  Water is
modeled with the stiffened-gas EOS (gamma = 6.12, pi_inf = 3.43e8 Pa),
so the density ratio is ~850:1 and the interface stays sharp under the
diffuse-interface scheme's positivity-preserving mixture rules.

    python examples/shock_droplet.py
"""

import numpy as np

from repro.bc import BC, BoundarySet
from repro.eos import Mixture, StiffenedGas
from repro.grid import StructuredGrid
from repro.solver import Case, Patch, RHSConfig, Simulation, box, halfspace, sphere

AIR = StiffenedGas(gamma=1.4, pi_inf=0.0, name="air")
WATER = StiffenedGas(gamma=6.12, pi_inf=3.43e8, name="water")


def post_shock_state(mach, rho0, p0, gamma):
    """Rankine-Hugoniot post-shock (rho, u, p) via the shared library."""
    from repro.validation.shock_relations import post_shock_state as rh

    s = rh(StiffenedGas(gamma=gamma, pi_inf=0.0), mach, rho0, p0)
    return s.rho, s.velocity, s.pressure


def build_case(n: int = 128) -> Case:
    # Domain in meters: 4 mm x 2 mm around a 0.4 mm-radius droplet.
    grid = StructuredGrid.uniform(((0.0, 4e-3), (0.0, 2e-3)), (2 * n, n))
    case = Case(grid, Mixture((AIR, WATER)))

    eps = 1e-6
    rho_air, p_atm = 1.204, 101325.0
    rho_water = 1000.0

    case.add(Patch(box([0.0, 0.0], [4e-3, 2e-3]),
                   alpha_rho=((1 - eps) * rho_air, eps * rho_water),
                   velocity=(0.0, 0.0), pressure=p_atm, alpha=(1 - eps,)))
    rho1, u1, p1 = post_shock_state(1.46, rho_air, p_atm, AIR.gamma)
    case.add(Patch(halfspace(0, 0.8e-3),
                   alpha_rho=((1 - eps) * rho1, eps * rho_water),
                   velocity=(u1, 0.0), pressure=p1, alpha=(1 - eps,)))
    case.add(Patch(sphere([1.5e-3, 1.0e-3], 0.4e-3),
                   alpha_rho=(eps * rho_air, (1 - eps) * rho_water),
                   velocity=(0.0, 0.0), pressure=p_atm, alpha=(eps,),
                   smear=2.5e-5))
    return case


def main() -> None:
    case = build_case(n=80)
    bcs = BoundarySet(((BC.EXTRAPOLATION, BC.EXTRAPOLATION),
                       (BC.REFLECTIVE, BC.REFLECTIVE)))
    sim = Simulation(case, bcs, config=RHSConfig(weno_order=5), cfl=0.35)
    lay = sim.layout

    rho1, u1, p1 = post_shock_state(1.46, 1.204, 101325.0, 1.4)
    print(f"shock-droplet: {sim.grid.shape[0]}x{sim.grid.shape[1]} cells; "
          f"Mach 1.46 air shock (post-shock p = {p1 / 1e3:.0f} kPa, "
          f"u = {u1:.0f} m/s) into a water droplet")

    t_end = 2.0e-6  # 2 microseconds: shock crosses and wraps the droplet
    report = t_end / 5.0
    next_report = report
    while sim.time < t_end:
        sim.step()
        if sim.time >= next_report:
            prim = sim.primitive()
            p_max = prim[lay.pressure].max()
            alpha_w = 1.0 - prim[lay.advected][0]
            x_front = sim.grid.centers(0)[
                np.argmax(prim[lay.pressure].max(axis=1) > 1.2 * 101325.0)]
            print(f"  t={sim.time * 1e6:.2f} us  steps={sim.step_count:4d}  "
                  f"max p={p_max / 1e6:.2f} MPa  "
                  f"water mass frac range=({alpha_w.min():.2e}, {alpha_w.max():.4f})")
            next_report += report

    prim = sim.primitive()
    rho = prim[lay.partial_densities].sum(axis=0)
    print(f"\ndensity ratio across interface: {rho.max() / rho.min():.0f}:1")
    print(f"total steps: {sim.step_count}, grind time "
          f"{sim.grind_time_ns():.1f} ns per cell-PDE-RHS (host)")
    sim.validate_state()
    print("state remains physical (positive density, finite fields)")


if __name__ == "__main__":
    main()
