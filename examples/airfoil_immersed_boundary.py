"""Flow over a NACA 2412 airfoil via the ghost-cell immersed boundary
method (paper §VI-B, laptop scale).

The paper resolves 500 cells per chord on 2.25 billion cells across 128
A100s; here the same method runs at ~60 cells per chord in 2D.  The
airfoil sits at 15 degrees angle of attack in a Mach 0.3 stream; the
ghost-cell IBM imposes the slip-wall condition, and the flow develops
the leading-edge suction peak and pressure-side compression that
generate lift.

    python examples/airfoil_immersed_boundary.py
"""

import numpy as np

from repro.bc import BC, BoundarySet
from repro.eos import Mixture, StiffenedGas
from repro.grid import StructuredGrid
from repro.ib import ImmersedBoundary, NACA4
from repro.solver import Case, Patch, RHSConfig, Simulation, box

AIR = StiffenedGas(1.4, 0.0, "air")
MIX = Mixture((AIR, AIR))


def main() -> None:
    # Free stream: rho = 1, p = 1, Mach 0.3.
    mach = 0.3
    u_inf = mach * np.sqrt(1.4)
    nx, ny = 192, 128
    grid = StructuredGrid.uniform(((-1.0, 2.0), (-1.0, 1.0)), (nx, ny))

    case = Case(grid, MIX)
    case.add(Patch(box([-1.0, -1.0], [2.0, 1.0]), alpha_rho=(0.5, 0.5),
                   velocity=(u_inf, 0.0), pressure=1.0, alpha=(0.5,)))

    foil = NACA4("2412", chord=1.0, leading_edge=(0.0, 0.0),
                 angle_of_attack_deg=15.0)
    ib = ImmersedBoundary(grid, case.layout, MIX, foil)
    print(f"NACA 2412 at 15 deg, Mach {mach}; grid {nx}x{ny} "
          f"(~{int(1.0 / float(grid.widths(0)[0]))} cells/chord), "
          f"{ib.num_ghost_cells()} ghost cells, "
          f"{ib.num_fluid_cells()} fluid cells")

    bcs = BoundarySet(((BC.EXTRAPOLATION, BC.EXTRAPOLATION),
                       (BC.EXTRAPOLATION, BC.EXTRAPOLATION)))
    sim = Simulation(case, bcs, config=RHSConfig(weno_order=5), cfl=0.4,
                     check_every=0)
    sim.q = ib.apply(sim.q)
    lay = sim.layout

    t_end = 2.0  # ~ one convective time over the chord at Mach 0.3
    next_report = 0.4
    while sim.time < t_end:
        sim.step()
        sim.q = ib.apply(sim.q)
        if sim.time >= next_report:
            prim = sim.primitive()
            p = prim[lay.pressure]
            print(f"  t={sim.time:.2f}  steps={sim.step_count:4d}  "
                  f"p range on fluid: ({p[ib.fluid].min():.3f}, "
                  f"{p[ib.fluid].max():.3f})")
            next_report += 0.4

    # Surface pressure statistics: suction side vs pressure side.
    prim = sim.primitive()
    p = prim[lay.pressure]
    X, Y = grid.meshgrid()
    sd = foil.sdf(X, Y)
    near = ib.fluid & (sd < 0.05)
    # Rotate into the chord frame to split upper/lower surfaces.
    aoa = np.deg2rad(15.0)
    y_chord = np.sin(aoa) * X + np.cos(aoa) * Y
    upper = near & (y_chord > 0.0)
    lower = near & (y_chord <= 0.0)
    p_up = float(p[upper].mean())
    p_lo = float(p[lower].mean())
    print(f"\nmean near-surface pressure: suction side {p_up:.4f}, "
          f"pressure side {p_lo:.4f}")
    print(f"pressure difference (lift-generating): {p_lo - p_up:+.4f}")
    assert p_lo > p_up, "positive AoA must load the pressure side"
    print(f"grind time: {sim.grind_time_ns():.1f} ns per cell-PDE-RHS (host)")
    sim.validate_state()
    print("state remains physical")


if __name__ == "__main__":
    main()
