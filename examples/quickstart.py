"""Quickstart: a two-fluid Sod shock tube validated against the exact solution.

This is the single-fluid limit of the five-equation model — both
"phases" are air — so the computed profile must match the classic Sod
solution.  Run time: a few seconds.

    python examples/quickstart.py
"""

import numpy as np

from repro import quickstart_sod
from repro.validation import sod_solution


def main() -> None:
    sim = quickstart_sod(n_cells=400)
    print(f"marching {sim.grid.num_cells} cells, WENO{sim.config.weno_order} + "
          f"{sim.config.riemann_solver.upper()} + SSP-RK{sim.rk_order} ...")
    sim.run(t_end=0.2)

    prim = sim.primitive()
    lay = sim.layout
    x = sim.grid.centers(0)
    rho = prim[lay.partial_densities].sum(axis=0)
    rho_exact, u_exact, p_exact = sod_solution(x, 0.2)

    print(f"steps taken:          {sim.step_count}")
    print(f"L1 density error:     {np.abs(rho - rho_exact).mean():.5f}")
    print(f"L1 velocity error:    {np.abs(prim[lay.velocity][0] - u_exact).mean():.5f}")
    print(f"L1 pressure error:    {np.abs(prim[lay.pressure] - p_exact).mean():.5f}")
    print(f"grind time:           {sim.grind_time_ns():.1f} ns per cell-PDE-RHS (host)")
    breakdown = sim.kernel_breakdown()
    print("host kernel shares:   "
          + ", ".join(f"{k}={100 * v:.0f}%" for k, v in sorted(breakdown.items())))

    # Crude terminal plot of the density profile.
    print("\ndensity profile (computed '*', exact '.'):")
    rows, cols = 16, 80
    idx = np.linspace(0, x.size - 1, cols).astype(int)
    grid_chars = [[" "] * cols for _ in range(rows)]
    for c, i in enumerate(idx):
        r_ex = int((1.0 - rho_exact[i] / 1.05) * (rows - 1))
        r_nm = int((1.0 - rho[i] / 1.05) * (rows - 1))
        grid_chars[min(max(r_ex, 0), rows - 1)][c] = "."
        grid_chars[min(max(r_nm, 0), rows - 1)][c] = "*"
    print("\n".join("".join(row) for row in grid_chars))


if __name__ == "__main__":
    main()
