"""Distributed execution, two ways (paper §III-A, §IV-C).

1. **Functional**: run the same shock problem serially and over 4
   simulated ranks with real halo exchanges, and verify the results are
   bit-for-bit identical — the correctness property under all of the
   paper's scaling numbers.
2. **Timeline**: simulate the event-level schedule of a 16-GCD Frontier
   step with and without GPU-aware MPI and print Gantt traces, showing
   where the staged path loses its 11 points of strong-scaling
   efficiency.

    python examples/distributed_timeline.py
"""

import numpy as np

from repro.bc import BoundarySet
from repro.cluster import (
    BlockDecomposition,
    DistributedSolver,
    EventSimulator,
    FRONTIER,
)
from repro.eos import Mixture, StiffenedGas
from repro.grid import StructuredGrid
from repro.solver import Case, Patch, RHSConfig, Simulation, box, sphere

AIR = StiffenedGas(1.4)
MIX = Mixture((AIR, AIR))


def functional_demo() -> None:
    print("=== functional halo exchange: distributed == serial ===")
    grid = StructuredGrid.uniform(((0.0, 1.0), (0.0, 1.0)), (48, 48))
    case = Case(grid, MIX)
    case.add(Patch(box([0, 0], [1, 1]), (0.5, 0.5), (0.0, 0.0), 1.0, (0.5,)))
    case.add(Patch(sphere([0.4, 0.5], 0.15), (1.0, 1.0), (0.0, 0.0), 5.0, (0.5,)))
    bcs = BoundarySet.all_extrapolation(2)

    serial = Simulation(case, bcs, fixed_dt=5e-4, check_every=0)
    q0 = serial.q.copy()
    for _ in range(10):
        serial.step()

    decomp = BlockDecomposition.balanced(grid.shape, 4)
    ds = DistributedSolver(grid, case.layout, MIX, bcs, decomp, RHSConfig())
    q_dist = ds.run(q0, dt=5e-4, n_steps=10)

    diff = np.abs(q_dist - serial.q).max()
    print(f"4-rank grid {decomp.rank_grid}, 10 steps: "
          f"max |distributed - serial| = {diff} (bitwise identical: {diff == 0.0})")
    print(f"halo traffic: {ds.halo.messages} messages, "
          f"{ds.halo.bytes_exchanged / 1e6:.2f} MB")


def timeline_demo() -> None:
    print("\n=== event timeline: one Frontier step, 16 GCDs ===")
    decomp = BlockDecomposition.balanced((512, 256, 256), 16)
    for aware, label in ((True, "GPU-aware MPI"), (False, "host-staged MPI")):
        tl = EventSimulator(FRONTIER, decomp, gpu_aware=aware).simulate_rhs()
        print(f"\n{label}: RHS finishes in {tl.finish * 1e3:.2f} ms "
              f"(worst idle {100 * tl.max_idle_fraction():.1f}%)")
        print(tl.gantt(width=64, max_ranks=6))
    print("\nlegend: c=compute p=pack s=staging w=wire u=unpack .=idle")


def imbalance_demo() -> None:
    print("\n=== load imbalance from remainder blocks ===")
    decomp = BlockDecomposition((524, 256, 256), (8, 1, 1))
    sizes = sorted({decomp.local_cells(r)[0] for r in range(8)})
    tl = EventSimulator(FRONTIER, decomp).simulate_rhs()
    print(f"524 cells over 8 ranks -> slab widths {sizes}; "
          f"worst idle {100 * tl.max_idle_fraction():.2f}%")


def main() -> None:
    functional_demo()
    timeline_demo()
    imbalance_demo()


if __name__ == "__main__":
    main()
