"""A tour of the paper's GPU-porting story on the simulated devices.

Walks through §III's optimisation sequence on a modeled V100 and MI250X:

1. naive ``parallel loop``  ->  ``gang vector``  ->  ``collapse(3)``,
2. derived types -> packed 4D arrays (6x),
3. uncoalesced -> coalesced memory (10x),
4. un-inlined serial subroutines -> Fypp inlining (10x),
5. run-time-sized ``private`` arrays on CCE+AMD (30x),
6. collapsed-loop vs library transposes (7x on MI250X),

then prints the resulting Fig. 6-style breakdown per device.  Every
kernel also *executes* a real NumPy body through the OpenACC-model
runtime, with data-region residency enforced.

    python examples/gpu_porting_tour.py
"""

import numpy as np

from repro.acc import AccKernel, AccRuntime
from repro.acc.directives import listing1_nest
from repro.hardware import CostModel, ProblemShape, get_device, rhs_workloads

NX = NY = NZ = 100


def tour_directives(rt: AccRuntime) -> None:
    print(f"\n[{rt.device.name} + {rt.compiler.name}] directive tuning "
          f"(Listing 1 kernel, {NX}x{NY}x{NZ} cells):")
    configs = {
        "parallel loop (default)": dict(gang_vector=False, collapse=1),
        "+ gang vector":           dict(gang_vector=True, collapse=1),
        "+ collapse(3)":           dict(gang_vector=True, collapse=3),
    }
    base = None
    for name, kw in configs.items():
        kernel = AccKernel(name=name, nest=listing1_nest(NX, NY, NZ, 2, **kw),
                           body=lambda x: x, kernel_class="weno",
                           flops_per_iter=150.0, bytes_per_iter=10.7)
        t = rt.modeled_time(kernel)
        base = base or t
        print(f"  {name:<26} {t * 1e3:>10.3f} ms   ({base / t:5.1f}x vs default)")


def tour_layout(rt: AccRuntime) -> None:
    print(f"\n[{rt.device.name}] data-layout optimisations (WENO kernel, 1M cells):")
    cm = rt.cost
    shape = ProblemShape(cells=1_000_000)

    def weno(**flags):
        w = next(w for w in rhs_workloads(shape, **flags) if w.kernel_class == "weno")
        return cm.kernel_time(w)

    steps = [
        ("derived types, uncoalesced", dict(layout_aos=True, coalesced=False)),
        ("packed 4D arrays (6x)", dict(coalesced=False)),
        ("+ coalesced access (10x)", dict()),
    ]
    prev = None
    for name, flags in steps:
        t = weno(**flags)
        gain = "" if prev is None else f"({prev / t:4.1f}x step gain)"
        print(f"  {name:<30} {t * 1e3:>10.3f} ms  {gain}")
        prev = t

    print(f"  Fypp inlining avoids a "
          f"{weno(fypp_inlined=False) / weno():.0f}x slowdown")
    if rt.device.vendor == "amd":
        bad = weno(private_compile_sized=False)
        print(f"  compile-time private sizing avoids a {bad / weno():.0f}x "
              f"slowdown (CCE+AMD only)")
        print(f"  hipBLAS GEAM transposes: {rt.library_transpose_speedup():.0f}x "
              f"over collapsed loops")


def run_real_kernel(rt: AccRuntime) -> None:
    """Execute a real packed-array kernel through the runtime with
    Listing-1 directives and default(present) residency checks."""
    n = 32
    host = np.random.default_rng(0).random((n, n, n, 7))
    rt.data.enter_data("q_packed", host)

    kernel = AccKernel(
        name="divergence_update",
        nest=listing1_nest(n, n, n, 2, collapse=3),
        body=lambda q: q[1:] - q[:-1],
        kernel_class="other",
        flops_per_iter=7.0, bytes_per_iter=56.0,
        arrays=("q_packed",))
    out = rt.launch(kernel, rt.data.device_view("q_packed"))
    rt.data.exit_data("q_packed", host, copyout=False)
    print(f"\n[{rt.device.name}] executed '{kernel.name}' for real: "
          f"output shape {out.shape}, modeled {rt.profile.total_seconds() * 1e6:.1f} us, "
          f"H2D traffic {rt.data.h2d_bytes / 1e6:.1f} MB")


def breakdown(key: str) -> None:
    dev = get_device(key)
    cm = CostModel(dev, "cce" if dev.vendor == "amd" else "nvhpc")
    works = rhs_workloads(ProblemShape(cells=8_000_000))
    times = {w.kernel_class: cm.kernel_time(w) for w in works}
    total = sum(times.values())
    grind = total / (8e6 * 7) * 1e9
    shares = "  ".join(f"{k}: {100 * v / total:4.1f}%" for k, v in times.items())
    print(f"  {dev.name:<16} grind {grind:6.3f} ns   {shares}")


def main() -> None:
    nv = AccRuntime(get_device("v100"), "nvhpc")
    amd = AccRuntime(get_device("mi250x"), "cce")

    tour_directives(nv)
    tour_layout(nv)
    tour_layout(amd)
    run_real_kernel(nv)

    print("\nFig. 6-style breakdown (8M cells, tuned configuration):")
    for key in ("gh200", "h100", "a100", "v100", "mi250x"):
        breakdown(key)


if __name__ == "__main__":
    main()
