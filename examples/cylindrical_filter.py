"""Azimuthal low-pass filtering on a cylindrical grid (paper §III-A, §III-E).

Near the axis of a 3D cylindrical grid the azimuthal cells become thin
wedges, so unfiltered high-frequency content forces a crippling CFL
step.  MFC applies a radius-dependent low-pass FFT filter (cuFFT on
NVIDIA, hipFFT on AMD, FFTW on CPUs); this demo shows the filter
removing under-resolved azimuthal modes near the axis while leaving the
outer rings untouched, and the resulting relief on the effective
azimuthal CFL limit.

    python examples/cylindrical_filter.py
"""

import numpy as np

from repro.fftfilter import FFTFilterPlan
from repro.grid import CylindricalGrid, StructuredGrid


def main() -> None:
    nz, nr, ntheta = 8, 24, 64
    zr = StructuredGrid.uniform(((0.0, 1.0), (0.0, 0.5)), (nz, nr))
    grid = CylindricalGrid(zr, ntheta)
    r = zr.centers(1)

    print(f"cylindrical grid: {grid.shape} (z, r, theta)")
    print(f"azimuthal arc length: {grid.arc_lengths()[0]:.2e} m at the "
          f"innermost ring vs {grid.arc_lengths()[-1]:.2e} m at the rim "
          f"({grid.arc_lengths()[-1] / grid.arc_lengths()[0]:.0f}x)")

    cutoffs = grid.mode_cutoff()
    print("\nper-ring retained azimuthal modes (Nyquist = 32):")
    for i in range(0, nr, 4):
        print(f"  r = {r[i]:.3f}: keep modes 0..{cutoffs[i]}")

    # A field with uniform broadband azimuthal noise.
    rng = np.random.default_rng(0)
    theta = np.linspace(0, 2 * np.pi, ntheta, endpoint=False)
    signal = 1.0 + 0.5 * np.cos(2 * theta)          # resolved content
    noise = 0.3 * np.cos(28 * theta + 1.0)          # near-Nyquist content
    field = np.broadcast_to(signal + noise, (1, nz, nr, ntheta)).copy()

    plan = FFTFilterPlan(ntheta, cutoffs)
    filtered = plan.execute(field)

    def hf_energy(f, ring):
        spec = np.abs(np.fft.rfft(f[0, 0, ring]))
        return float(spec[20:].sum())

    print("\nhigh-frequency (k>=20) energy before -> after filtering:")
    for ring in (0, nr // 2, nr - 1):
        before = hf_energy(field, ring)
        after = hf_energy(filtered, ring)
        print(f"  ring {ring:2d} (r={r[ring]:.3f}): {before:8.2f} -> {after:8.2f}")

    # The CFL relief: unfiltered, the smallest azimuthal scale per ring
    # is one cell arc (circumference / ntheta); filtered, it is the half
    # wavelength of the highest retained mode (circumference / 2k_c).
    c = 340.0  # a representative sound speed
    circumference = 2.0 * np.pi * r
    dt_unfiltered = (circumference / ntheta / c).min()
    dt_filtered = (circumference / (2.0 * cutoffs) / c).min()
    print(f"\nazimuthal CFL-limited dt: {dt_unfiltered:.3e} s unfiltered vs "
          f"{dt_filtered:.3e} s filtered ({dt_filtered / dt_unfiltered:.1f}x relief)")


if __name__ == "__main__":
    main()
