"""Taylor-Green vortex: inviscid conservation and viscous decay
(paper §III.F lists Taylor-Green among MFC's validation cases).

Runs the 2D Taylor-Green vortex at Mach ~0.08 twice — inviscid and with
a Newtonian viscosity — and compares kinetic-energy histories against
the incompressible reference: constant KE (inviscid) and
:math:`KE(t) = KE_0\\,e^{-4\\nu t}` (viscous, k = 1 modes).

    python examples/taylor_green.py
"""

import numpy as np

from repro.bc import BoundarySet
from repro.eos import Mixture, StiffenedGas
from repro.grid import StructuredGrid
from repro.solver import (
    Case,
    Patch,
    RHSConfig,
    Simulation,
    box,
    enstrophy,
    kinetic_energy,
    max_mach,
)
from repro.state import prim_to_cons

AIR = StiffenedGas(1.4)
MIX = Mixture((AIR, AIR))


def taylor_green_sim(viscosity, n=64):
    grid = StructuredGrid.uniform(((0.0, 2 * np.pi), (0.0, 2 * np.pi)), (n, n))
    case = Case(grid, MIX)
    case.add(Patch(box([0.0, 0.0], [7.0, 7.0]), (0.5, 0.5), (0.0, 0.0),
                   100.0, (0.5,)))
    sim = Simulation(case, BoundarySet.all_periodic(2), cfl=0.4,
                     config=RHSConfig(viscosity=viscosity), check_every=0)
    X, Y = grid.meshgrid()
    prim = sim.primitive()
    lay = sim.layout
    prim[lay.momentum_component(0)] = np.cos(X) * np.sin(Y)
    prim[lay.momentum_component(1)] = -np.sin(X) * np.cos(Y)
    prim[lay.pressure] = 100.0 - 0.25 * (np.cos(2 * X) + np.cos(2 * Y))
    sim.q = prim_to_cons(lay, MIX, prim)
    return sim


def main() -> None:
    mu = 0.05
    t_end = 2.0
    print(f"Taylor-Green vortex, 64^2, Mach ~0.08; viscous case nu = {mu}")
    print(f"{'t':>5} {'KE/KE0 inviscid':>16} {'KE/KE0 viscous':>15} "
          f"{'exp(-4 nu t)':>13} {'enstrophy ratio':>16}")

    runs = {"inviscid": taylor_green_sim(None),
            "viscous": taylor_green_sim((mu, mu))}
    ke0 = {k: kinetic_energy(s.layout, s.grid, s.primitive())
           for k, s in runs.items()}
    ens0 = enstrophy(runs["viscous"].layout, runs["viscous"].grid,
                     runs["viscous"].primitive())

    for checkpoint in np.arange(0.4, t_end + 1e-9, 0.4):
        for sim in runs.values():
            sim.run(t_end=checkpoint)
        ke_i = kinetic_energy(runs["inviscid"].layout, runs["inviscid"].grid,
                              runs["inviscid"].primitive()) / ke0["inviscid"]
        ke_v = kinetic_energy(runs["viscous"].layout, runs["viscous"].grid,
                              runs["viscous"].primitive()) / ke0["viscous"]
        ens_v = enstrophy(runs["viscous"].layout, runs["viscous"].grid,
                          runs["viscous"].primitive()) / ens0
        exact = np.exp(-4.0 * mu * checkpoint)
        print(f"{checkpoint:>5.1f} {ke_i:>16.4f} {ke_v:>15.4f} "
              f"{exact:>13.4f} {ens_v:>16.4f}")

    m = max_mach(runs["viscous"].layout, MIX, runs["viscous"].primitive())
    err = abs(ke_v - np.exp(-4.0 * mu * t_end)) / np.exp(-4.0 * mu * t_end)
    print(f"\nfinal viscous KE error vs incompressible theory: {100 * err:.1f}%")
    print(f"max Mach stays {m:.3f} (low-Mach regime holds)")
    for name, sim in runs.items():
        sim.validate_state()
        print(f"{name}: {sim.step_count} steps, grind "
              f"{sim.grind_time_ns():.0f} ns/cell/PDE/RHS (host)")


if __name__ == "__main__":
    main()
