"""Reproduce the paper's scaling figures (Figs. 2-4) from the analytic models.

Prints the weak-scaling, strong-scaling, and GPU-aware-MPI tables for
OLCF Summit and OLCF Frontier, plus the I/O strategy crossover that
motivated MFC's file-per-process switch (§III-A).

    python examples/scaling_study.py
"""

from repro.cluster import FRONTIER, IOModel, ScalingDriver, SUMMIT


def show(title, header, rows):
    print(f"\n{title}")
    print(f"  {header}")
    for r in rows:
        print(f"  {r}")


def main() -> None:
    # --- Fig. 2: weak scaling -------------------------------------------------
    drv = ScalingDriver(SUMMIT, gpu_aware=False)
    pts = drv.weak_scaling(8_000_000, [128, 512, 2048, 8192, 13824])
    eff = drv.weak_efficiency(pts)
    show("Fig 2a — Summit weak scaling (8M cells/GPU)",
         f"{'GPUs':>6} {'machine':>8} {'efficiency':>11}",
         [f"{p.ndevices:>6} {100 * SUMMIT.fraction_of_machine(p.ndevices):>7.1f}% "
          f"{100 * e:>10.1f}%" for p, e in zip(pts, eff)])

    drv = ScalingDriver(FRONTIER, gpu_aware=True)
    pts = drv.weak_scaling(32_000_000, [128, 1024, 8192, 32768, 65536])
    eff = drv.weak_efficiency(pts)
    show("Fig 2b — Frontier weak scaling (32M cells/GCD)",
         f"{'GCDs':>6} {'machine':>8} {'efficiency':>11}",
         [f"{p.ndevices:>6} {100 * FRONTIER.fraction_of_machine(p.ndevices):>7.1f}% "
          f"{100 * e:>10.1f}%" for p, e in zip(pts, eff)])

    # --- Fig. 3: strong scaling -----------------------------------------------
    drv = ScalingDriver(SUMMIT, gpu_aware=False)
    pts = drv.strong_scaling(8e6 * 64, [64, 128, 256, 512])
    eff = drv.strong_efficiency(pts)
    show("Fig 3a — Summit strong scaling (8M cells/GPU at base)",
         f"{'GPUs':>6} {'cells/GPU':>11} {'efficiency':>11}",
         [f"{p.ndevices:>6} {p.cells_per_device:>11.2e} {100 * e:>10.1f}%"
          for p, e in zip(pts, eff)])

    for label, cells in (("32M", 32e6), ("16M", 16e6)):
        drv = ScalingDriver(FRONTIER, gpu_aware=False)
        pts = drv.strong_scaling(cells * 128, [128, 512, 2048, 8192, 65536])
        eff = drv.strong_efficiency(pts)
        show(f"Fig 3b — Frontier strong scaling ({label} cells/GCD at base)",
             f"{'GCDs':>6} {'cells/GCD':>11} {'efficiency':>11}",
             [f"{p.ndevices:>6} {p.cells_per_device:>11.2e} {100 * e:>10.1f}%"
              for p, e in zip(pts, eff)])

    # --- Fig. 4: GPU-aware MPI ----------------------------------------------
    rows = []
    for nd in (128, 512, 2048):
        effs = []
        for aware in (True, False):
            drv = ScalingDriver(FRONTIER, gpu_aware=aware)
            pts = drv.strong_scaling(32e6 * 128, [128, nd])
            effs.append(drv.strong_efficiency(pts)[-1])
        rows.append(f"{nd:>6} {100 * effs[0]:>14.1f}% {100 * effs[1]:>12.1f}%")
    show("Fig 4 — Frontier strong scaling, GPU-aware vs host-staged MPI",
         f"{'GCDs':>6} {'GPU-aware':>15} {'staged':>13}", rows)

    # --- §III-A: I/O strategies ----------------------------------------------
    io = IOModel()
    per_rank = 32e6 * 7 * 8
    rows = []
    for n in (1024, 8192, 65536):
        rows.append(f"{n:>7} {io.shared_file_time(n, per_rank):>12.1f} s "
                    f"{io.file_per_process_time(n, per_rank):>14.1f} s")
    show("§III-A — I/O strategy (full 32M-cell state per rank)",
         f"{'ranks':>7} {'shared file':>14} {'file/process':>16}", rows)
    print("\npaper anchors: 97%/95% weak, 84%/81% strong, 92% with GPU-aware MPI")


if __name__ == "__main__":
    main()
