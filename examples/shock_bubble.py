"""Shock-bubble interaction (paper §VI-C, laptop scale).

A Mach-2.4-style planar shock in a heavy fluid impinges on a circular
bubble of light fluid — the 2D, coarse-grid analog of the paper's
2-billion-cell shock-bubble-cloud run on 1,024 MI250X GCDs.  The
diffuse interface deforms, the bubble compresses, and vorticity is
deposited along the interface (the baroclinic mechanism the paper's
Fig. 10 renders in 3D).

    python examples/shock_bubble.py
"""

import numpy as np

from repro.bc import BC, BoundarySet
from repro.eos import Mixture, StiffenedGas
from repro.grid import StructuredGrid
from repro.solver import Case, Patch, RHSConfig, Simulation, box, halfspace, sphere

# Heavy ambient fluid and light bubble, both ideal gases with different
# gamma (the classic helium-bubble-in-air configuration, nondimensional).
HEAVY = StiffenedGas(gamma=1.4, pi_inf=0.0, name="air")
LIGHT = StiffenedGas(gamma=1.67, pi_inf=0.0, name="helium")


def post_shock_state(mach, rho0, p0, gamma):
    """Rankine-Hugoniot post-shock (rho, u, p) via the shared library."""
    from repro.validation.shock_relations import post_shock_state as rh

    s = rh(StiffenedGas(gamma=gamma, pi_inf=0.0), mach, rho0, p0)
    return s.rho, s.velocity, s.pressure


def build_case(n: int = 160) -> Case:
    grid = StructuredGrid.uniform(((0.0, 2.0), (0.0, 1.0)), (2 * n, n))
    case = Case(grid, Mixture((HEAVY, LIGHT)))

    eps = 1e-6
    rho_amb, p_amb = 1.0, 1.0
    rho_bub = 0.18  # light gas density

    # Ambient heavy fluid.
    case.add(Patch(box([0.0, 0.0], [2.0, 1.0]),
                   alpha_rho=((1 - eps) * rho_amb, eps * rho_bub),
                   velocity=(0.0, 0.0), pressure=p_amb, alpha=(1 - eps,)))
    # Post-shock region moving right, upstream of the bubble.
    rho1, u1, p1 = post_shock_state(2.4, rho_amb, p_amb, HEAVY.gamma)
    case.add(Patch(halfspace(0, 0.3),
                   alpha_rho=((1 - eps) * rho1, eps * rho_bub),
                   velocity=(u1, 0.0), pressure=p1, alpha=(1 - eps,)))
    # The bubble: light fluid, pressure/velocity equilibrium with ambient.
    case.add(Patch(sphere([0.7, 0.5], 0.15),
                   alpha_rho=(eps * rho_amb, (1 - eps) * rho_bub),
                   velocity=(0.0, 0.0), pressure=p_amb, alpha=(eps,),
                   smear=0.01))
    return case


def vorticity(sim: Simulation) -> np.ndarray:
    prim = sim.primitive()
    lay = sim.layout
    u = prim[lay.momentum_component(0)]
    v = prim[lay.momentum_component(1)]
    dx = float(sim.grid.widths(0)[0])
    dy = float(sim.grid.widths(1)[0])
    return np.gradient(v, dx, axis=0) - np.gradient(u, dy, axis=1)


def main() -> None:
    case = build_case(n=96)
    bcs = BoundarySet(((BC.EXTRAPOLATION, BC.EXTRAPOLATION),
                       (BC.REFLECTIVE, BC.REFLECTIVE)))
    sim = Simulation(case, bcs, config=RHSConfig(weno_order=5), cfl=0.4)
    lay = sim.layout

    print(f"shock-bubble: {sim.grid.shape[0]}x{sim.grid.shape[1]} cells, "
          f"Mach 2.4 shock into a light bubble")
    t_end = 0.25
    next_report = 0.05
    while sim.time < t_end:
        sim.step()
        if sim.time >= next_report:
            prim = sim.primitive()
            alpha_bub = 1.0 - prim[lay.advected][0]
            area = float((alpha_bub * sim.grid.cell_volumes()).sum())
            print(f"  t={sim.time:.3f}  steps={sim.step_count:4d}  "
                  f"bubble area={area:.4f}  max|vorticity|={np.abs(vorticity(sim)).max():8.1f}")
            next_report += 0.05

    prim = sim.primitive()
    alpha_bub = 1.0 - prim[lay.advected][0]
    area0 = np.pi * 0.15 ** 2
    area = float((alpha_bub * sim.grid.cell_volumes()).sum())
    print(f"\nfinal bubble area / initial: {area / area0:.2f} "
          f"(< 1: shock compression)")
    print(f"grind time: {sim.grind_time_ns():.1f} ns per cell-PDE-RHS (host)")

    # ASCII rendering of the volume-fraction field.
    print("\nbubble volume fraction (dark = bubble fluid):")
    chars = " .:-=+*#%@"
    sub = alpha_bub[:: max(1, alpha_bub.shape[0] // 72),
                    :: max(1, alpha_bub.shape[1] // 28)]
    for row in sub.T[::-1]:
        print("".join(chars[min(int(v * (len(chars) - 1) + 0.5), len(chars) - 1)]
                      for v in row))


if __name__ == "__main__":
    main()
