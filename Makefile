# Convenience targets for the repro project.

PYTHON ?= python

.PHONY: install test test-thread test-fault test-procs test-ensemble test-chaos test-backends bench bench-rhs bench-backends bench-layout bench-tuned bench-fused bench-cluster bench-ensemble tune examples artifacts clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Fast tier-1 slice: the thread-tiled execution backend only.
test-thread:
	$(PYTHON) -m pytest tests/ -k thread

# Fault-injection and recovery suite (rollback-retry, checkpoint
# corruption fallback, determinism across layouts/threads).
test-fault:
	$(PYTHON) -m pytest tests/ -m faults

# Multi-process executor suite: shared-memory halo exchange,
# decomposed-vs-serial bit-identity, rank-fault restart.
test-procs:
	$(PYTHON) -m pytest tests/test_procs.py tests/test_cluster.py

# Batched ensemble suite: stacked-vs-standalone bit-identity across
# orders/solvers/layouts/threads/fusion, ragged retirement, scheduler
# grouping, allocation budget.
test-ensemble:
	$(PYTHON) -m pytest tests/ -m ensemble

# Chaos-recovery suite for the durable ensemble service: seeded worker
# SIGKILLs, ledger/checkpoint corruption, poison-job quarantine, and
# kill-at-every-append resume (the faults + ensemble markers) —
# time-boxed because a regression here can leave supervised workers
# hanging instead of failing.
test-chaos:
	timeout 600 $(PYTHON) -m pytest tests/ -m "faults or ensemble" -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Hot-path perf trajectory: grind time + kernel breakdown over a grid x
# thread-count sweep, plus allocations per step on the smallest grid
# (appends to benchmarks/results/BENCH_rhs.json's history).
bench-rhs:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_rhs.py \
		--grid 64 --grid 256 --threads 1 --threads 2 --threads 4

# Coalesced sweep engine: strided vs transposed grind time across grids
# and thread counts (appends a layout-stamped history entry).
bench-layout:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_rhs.py \
		--grid 64 --grid 256 --threads 1 --threads 4 \
		--layout strided --layout transposed

# Backend x dtype kernel sweep with measured-vs-modeled model-error
# columns (appends a backend/dtype-stamped entry to
# benchmarks/results/BENCH_rhs.json's history).
bench-backends:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_backends.py \
		--grid 64 --repeats 5

# Execution-backend seam: bitwise-identity, guard-leak, torch-parity,
# and float32-precision suites.
test-backends:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_backends.py -q

# Empirical autotuner: tuned-vs-untuned grind comparison on the bench
# case (appends a tuned-stamped history entry with the winning plan).
bench-tuned:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_rhs.py \
		--grid 256 --threads 1 --tuned

# Fused sweep kernels: fused-vs-tuned grind comparison on the bench
# case (appends a fused-stamped history entry with launch counters and
# the selected backend; see docs/fusion.md).
bench-fused:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_rhs.py \
		--grid 256 --threads 1 --fused

# Real multi-process weak/strong scaling through the shared-memory
# cluster executor, reconciled against the analytic comm model
# (appends to benchmarks/results/BENCH_cluster.json's history).
bench-cluster:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_cluster.py \
		--ranks 1 --ranks 2 --ranks 4

# Batched ensemble execution: stacked vs sequential per-case grind over
# a grid x batch-width sweep spanning both regimes — the small
# overhead-dominated grids batching is for (16^2/32^2) and the
# bandwidth-saturated ones it honestly cannot help (64^2/128^2).
# Appends to benchmarks/results/BENCH_ensemble.json's history; see
# docs/ensemble.md for the measured curve.
bench-ensemble:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_ensemble.py \
		--grid 16 --grid 32 --grid 64 --grid 128 \
		--batch 1 --batch 2 --batch 4 --batch 8 --batch 16

# Autotune the quickstart example case on this host and cache the
# winning kernel-variant plan (see docs/tuning.md).
tune:
	PYTHONPATH=src $(PYTHON) -m repro tune examples/cases/shock_bubble_resilient.json

# Regenerates benchmarks/results/*.txt (the figure artifacts).
artifacts: bench
	@ls benchmarks/results/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/scaling_study.py
	$(PYTHON) examples/gpu_porting_tour.py
	$(PYTHON) examples/cylindrical_filter.py
	$(PYTHON) examples/distributed_timeline.py
	$(PYTHON) examples/taylor_green.py
	$(PYTHON) examples/shock_bubble.py
	$(PYTHON) examples/shock_droplet.py
	$(PYTHON) examples/airfoil_immersed_boundary.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
